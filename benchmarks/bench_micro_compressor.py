"""Microbenchmarks: per-event compressor cost, isolated from the runtime.

Feeds identical synthetic event/marker streams straight into each
compressor, measuring pure compression throughput — the cleanest view of
the paper's O(1)-per-event claim (CYPRESS compares an event only against
records at its own CTT vertex; ScalaTrace searches its queue tail).

This module doubles as the **intra-process ingestion regression
harness**: it sweeps four workload shapes

* ``fig11``          — loop over a branch pair + collective (paper Fig. 11)
* ``collectives``    — flat loop of collectives (pure key-interning)
* ``nested``         — doubly nested point-to-point loop (marker heavy)
* ``irecv_waitall``  — nonblocking pairs + waitall (request-GID path)

through four ingestion modes

* ``reference``  — ``CypressConfig(fastpath=False)``: generic child scan,
  fresh key per event (the pre-optimization code path);
* ``callbacks``  — fast path, one ``on_*`` call per marker/event;
* ``stream``     — fast path, batched :meth:`ingest_stream` over a
  captured opcode stream;
* ``packed_ingest`` — run-collapsed :meth:`ingest_runs` over a
  pre-packed CYPK blob (what the parallel workers and
  ``compress_streams`` run): columnar batch time decode plus
  iteration-replay plans that walk the CTT once per repeated loop body;
* ``parallel``   — **steady-state** shared-memory transport: pre-packed
  rank streams on a warm :class:`ShmCompressSession` pool, timed ingest
  only (pool fork/warmup is reported separately as
  ``parallel_setup_seconds``);
* ``parallel_cold`` — one-shot :func:`compress_streams` including pool
  start-up and the parent-side encode — the number the seed bench
  conflated with throughput;
* ``pack``       — parent-side packed-codec encode rate (events/s), the
  cost capture-time packing (``StreamCaptureSink(packed=True)``)
  removes from the hand-off.

All modes must produce byte-identical serialized traces; the harness
asserts this on every run.  ``python -m benchmarks.bench_micro_compressor``
rewrites ``results/BENCH_intra.json`` including conservative regression
floors (25% of measured); ``--smoke`` (CI) re-measures every shape and
fails if fig11 throughput drops below the committed floor, the fast
path stops beating the reference path, steady-state ``parallel`` falls
under 0.5× ``stream``, any shape's ``packed_ingest`` rate falls under
1.5× that shape's pinned pre-PR ``stream`` rate
(``STREAM_PRE_RUNS_PR``), or warm ``parallel`` falls under 0.85× of
``parallel_serial_equiv`` on any shape.
"""

from __future__ import annotations

import json
import sys
import time

from repro.baselines.scalatrace import ScalaTraceCompressor
from repro.baselines.scalatrace2 import ScalaTrace2Compressor
from repro.core import packed, serialize
from repro.core.inter import merge_all
from repro.core.intra import (
    CypressConfig,
    IntraProcessCompressor,
    ShmCompressSession,
    close_shared_sessions,
    compress_streams,
)
from repro.core.respool import ShmPoolError
from repro.mpisim.events import NO_PEER, CommEvent
from repro.mpisim.pmpi import (
    OP_BRANCH_ENTER,
    OP_BRANCH_EXIT,
    OP_EVENT,
    OP_LOOP_ITER,
    OP_LOOP_POP,
    OP_LOOP_PUSH,
)
from repro.static.instrument import compile_minimpi

from .common import RESULTS_DIR, emit, publish_gauges

BENCH_JSON = RESULTS_DIR / "BENCH_intra.json"
# Mirror at the repo root so the latest committed numbers are one click
# away (CI uploads both; the root copy is what READMEs link to).
BENCH_JSON_ROOT = RESULTS_DIR.parent / "BENCH_intra.json"

# Observability must be free when off and near-free when on: the hot
# ingestion loops carry no registry calls at all (per-event stats are
# plain slow-path integer counters, rated post-hoc against CTT state),
# so metrics-on may cost at most the stage-level span/publish work.
# The --smoke gate asserts the *paired* metrics-on/metrics-off ratio
# stays under this bound.
OBS_OVERHEAD_LIMIT = 1.03

# Per-event-callback throughput of the fig11 shape measured on the commit
# preceding this optimization pass (best of 5, events/s) — the "3x"
# acceptance ratio in BENCH_intra.json is relative to this.
BASELINE_PRE_PR = 247_272

# Whole-machine throughput drifts ±30% between runs, so a ratio of two
# measurements taken at different times is unreliable.  This is the
# *paired* speedup: pre-PR tree and this tree run in alternating
# adjacent subprocesses (best-of-5 in each), ratio per round, median of
# 5 rounds.  Committed at measurement time; the live single-run ratio is
# also written to the JSON for comparison.
PAIRED_SPEEDUP_VS_PRE_PR = 3.16

# Serial ``stream`` (ingest_stream) rates per shape, measured on the
# commit preceding the columnar run-length ingest engine (best of 3,
# events/s, this box).  The --smoke ``packed_ingest`` gate is relative
# to these pinned numbers — run-collapsed ingestion over a packed blob
# must stay ≥ 1.5× the pre-PR streaming rate on every shape.
STREAM_PRE_RUNS_PR = {
    "fig11": 461_238,
    "collectives": 644_497,
    "nested": 583_889,
    "irecv_waitall": 354_409,
}
PACKED_INGEST_MIN_SPEEDUP = 1.5

# Warm shm ``parallel`` must keep at least this fraction of
# ``parallel_serial_equiv`` (the same packed blobs ingested serially in
# the parent) — the transport-overhead budget of the warm pool.
WARM_PARALLEL_MIN_RATIO = 0.85

# A loop over a branch pair — the paper's Fig. 11 shape.
PROGRAM = """
func main() {
  for (var i = 0; i < n; i = i + 1) {
    if (i % 2 == 0) { mpi_send(1, 4096, 7); } else { mpi_recv(1, 4096, 7); }
    mpi_allreduce(8);
  }
}
"""

PROGRAM_COLLECTIVES = """
func main() {
  for (var i = 0; i < n; i = i + 1) {
    mpi_allreduce(8);
    mpi_barrier();
    mpi_bcast(0, 1024);
  }
}
"""

PROGRAM_NESTED = """
func main() {
  for (var i = 0; i < n; i = i + 1) {
    for (var j = 0; j < m; j = j + 1) {
      mpi_send(1, 2048, 5);
      mpi_recv(1, 2048, 5);
    }
  }
}
"""

PROGRAM_IRECV = """
func main() {
  for (var i = 0; i < n; i = i + 1) {
    var r[2];
    r[0] = mpi_irecv(1, 4096, 9);
    r[1] = mpi_isend(1, 4096, 9);
    mpi_waitall(r, 2);
  }
}
"""

N_EVENTS = 4000


def _structure_ids(program: str = PROGRAM):
    compiled = compile_minimpi(program)
    loop_ids = []
    branch_id = None
    for node in compiled.cst.preorder():
        if node.kind == "loop":
            loop_ids.append(node.ast_id)
        if node.kind == "branch" and branch_id is None:
            branch_id = node.ast_id
    return compiled.cst, loop_ids, branch_id


# ---------------------------------------------------------------------------
# Stream builders: one captured opcode stream per shape (rank 0).


def _stream_fig11(iters: int):
    cst, (loop_id,), branch_id = _structure_ids(PROGRAM)
    stream = [(OP_LOOP_PUSH, loop_id)]
    t = 0.0
    seq = 0
    for i in range(iters):
        stream.append((OP_LOOP_ITER, loop_id))
        path = i % 2
        stream.append((OP_BRANCH_ENTER, branch_id, path))
        op = "MPI_Send" if path == 0 else "MPI_Recv"
        stream.append((OP_EVENT, CommEvent(
            op=op, rank=0, seq=seq, peer=1, tag=7, nbytes=4096,
            time_start=t, duration=1.0)))
        t += 2.0
        seq += 1
        stream.append((OP_BRANCH_EXIT, branch_id))
        stream.append((OP_EVENT, CommEvent(
            op="MPI_Allreduce", rank=0, seq=seq, nbytes=8,
            time_start=t, duration=1.5)))
        t += 2.5
        seq += 1
    stream.append((OP_LOOP_POP, loop_id))
    return cst, stream, 2 * iters


def _stream_collectives(iters: int):
    cst, (loop_id,), _ = _structure_ids(PROGRAM_COLLECTIVES)
    stream = [(OP_LOOP_PUSH, loop_id)]
    t = 0.0
    seq = 0
    for _i in range(iters):
        stream.append((OP_LOOP_ITER, loop_id))
        for op, nbytes, root in (
            ("MPI_Allreduce", 8, -1),
            ("MPI_Barrier", 0, -1),
            ("MPI_Bcast", 1024, 0),
        ):
            stream.append((OP_EVENT, CommEvent(
                op=op, rank=0, seq=seq, peer=NO_PEER, nbytes=nbytes,
                root=root, time_start=t, duration=1.0)))
            t += 1.5
            seq += 1
    stream.append((OP_LOOP_POP, loop_id))
    return cst, stream, 3 * iters


def _stream_nested(outer: int, inner: int):
    cst, (outer_id, inner_id), _ = _structure_ids(PROGRAM_NESTED)
    stream = [(OP_LOOP_PUSH, outer_id)]
    t = 0.0
    seq = 0
    for _i in range(outer):
        stream.append((OP_LOOP_ITER, outer_id))
        stream.append((OP_LOOP_PUSH, inner_id))
        for _j in range(inner):
            stream.append((OP_LOOP_ITER, inner_id))
            for op in ("MPI_Send", "MPI_Recv"):
                stream.append((OP_EVENT, CommEvent(
                    op=op, rank=0, seq=seq, peer=1, tag=5, nbytes=2048,
                    time_start=t, duration=1.0)))
                t += 1.5
                seq += 1
        stream.append((OP_LOOP_POP, inner_id))
    stream.append((OP_LOOP_POP, outer_id))
    return cst, stream, 2 * outer * inner


def _stream_irecv(iters: int):
    cst, (loop_id,), _ = _structure_ids(PROGRAM_IRECV)
    stream = [(OP_LOOP_PUSH, loop_id)]
    t = 0.0
    seq = 0
    rid = 0
    for _i in range(iters):
        stream.append((OP_LOOP_ITER, loop_id))
        stream.append((OP_EVENT, CommEvent(
            op="MPI_Irecv", rank=0, seq=seq, peer=1, tag=9, nbytes=4096,
            req=rid, time_start=t, duration=0.2)))
        t += 0.5
        seq += 1
        stream.append((OP_EVENT, CommEvent(
            op="MPI_Isend", rank=0, seq=seq, peer=1, tag=9, nbytes=4096,
            req=rid + 1, time_start=t, duration=0.2)))
        t += 0.5
        seq += 1
        stream.append((OP_EVENT, CommEvent(
            op="MPI_Waitall", rank=0, seq=seq, reqs=(rid, rid + 1),
            time_start=t, duration=1.0)))
        t += 1.5
        seq += 1
        rid += 2
    stream.append((OP_LOOP_POP, loop_id))
    return cst, stream, 3 * iters


def _shape(name: str, scale: int = 1):
    if name == "fig11":
        return _stream_fig11(10_000 * scale)
    if name == "collectives":
        return _stream_collectives(6_000 * scale)
    if name == "nested":
        return _stream_nested(200 * scale, 50)
    if name == "irecv_waitall":
        return _stream_irecv(6_000 * scale)
    raise ValueError(name)


SHAPE_NAMES = ("fig11", "collectives", "nested", "irecv_waitall")


# ---------------------------------------------------------------------------
# Ingestion modes.


def _drive_callbacks(comp: IntraProcessCompressor, rank: int, stream) -> None:
    """Replay a captured stream as individual per-callback calls — the
    live-tracing (non-batched) ingestion mode."""
    for item in stream:
        code = item[0]
        if code == OP_EVENT:
            comp.on_event(rank, item[1])
        elif code == OP_BRANCH_ENTER:
            comp.on_branch_enter(rank, item[1], item[2])
        elif code == OP_BRANCH_EXIT:
            comp.on_branch_exit(rank, item[1])
        elif code == OP_LOOP_ITER:
            comp.on_loop_iter(rank, item[1])
        elif code == OP_LOOP_PUSH:
            comp.on_loop_push(rank, item[1])
        elif code == OP_LOOP_POP:
            comp.on_loop_pop(rank, item[1])
        else:  # pragma: no cover - shapes use only the opcodes above
            raise ValueError(f"unexpected opcode {code}")


def _merged_blob(comp: IntraProcessCompressor) -> bytes:
    ranks = comp.ranks()
    return serialize.dumps(merge_all([comp.ctt(r) for r in ranks]))


def measure_shape(name: str, scale: int = 1, rounds: int = 3,
                  parallel_ranks: int = 8) -> dict:
    """Measure one shape through every ingestion mode; assert all modes
    produce byte-identical traces.  Rates are best-of-``rounds``."""
    cst, stream, nevents = _shape(name, scale)

    def best(run) -> float:
        b = None
        for _ in range(rounds):
            t0 = time.perf_counter()
            run()
            dt = time.perf_counter() - t0
            b = dt if b is None else min(b, dt)
        return b

    comps: dict[str, IntraProcessCompressor] = {}

    def run_reference():
        comps["reference"] = c = IntraProcessCompressor(
            cst, CypressConfig(fastpath=False))
        _drive_callbacks(c, 0, stream)

    def run_callbacks():
        comps["callbacks"] = c = IntraProcessCompressor(cst)
        _drive_callbacks(c, 0, stream)

    def run_stream():
        comps["stream"] = c = IntraProcessCompressor(cst)
        c.ingest_stream(0, stream)

    def run_packed_ingest():
        comps["packed_ingest"] = c = IntraProcessCompressor(cst)
        c.ingest_runs(0, blob_packed)

    blob_packed = packed.encode_stream(stream).to_bytes()
    rates = {
        "reference": nevents / best(run_reference),
        "callbacks": nevents / best(run_callbacks),
        "stream": nevents / best(run_stream),
        "packed_ingest": nevents / best(run_packed_ingest),
    }

    # Parallel executor over rank copies (per-rank independence).  Two
    # numbers, measured honestly: ``parallel_cold`` is a first-touch
    # compress_streams call and so includes pool fork plus the
    # parent-side encode; ``parallel`` is steady-state — pre-packed
    # streams on a warm pool, timed ingest only (what a long-lived
    # tracing service sees).  Its yardstick ``parallel_serial_equiv``
    # runs the *same* packed blobs serially in the parent (workers=None,
    # run-collapsed ingest) so the two rates differ only by transport
    # overhead — the --smoke gate holds warm parallel to ≥ 0.85× of it.
    # The pool may be unavailable in sandboxes — the cold call then
    # falls back loudly to serial and the warm number reuses it, still a
    # valid (if unflattering) measurement.
    streams = {r: stream for r in range(parallel_ranks)}
    total = parallel_ranks * nevents
    t0 = time.perf_counter()
    par = compress_streams(cst, streams, workers=parallel_ranks)
    rates["parallel_cold"] = total / (time.perf_counter() - t0)
    # The cold call parks its pool in the process-wide session cache;
    # drop it so idle pollers don't contend with the measurements below
    # (the warm-pool numbers use their own explicit session).
    close_shared_sessions()

    t0 = time.perf_counter()
    packed.encode_stream(stream).to_bytes()
    rates["pack"] = nevents / (time.perf_counter() - t0)
    packed_streams = {r: blob_packed for r in range(parallel_ranks)}

    def serial_equiv_once() -> float:
        t0 = time.perf_counter()
        comps["serial_equiv"] = compress_streams(
            cst, packed_streams, workers=None)
        return time.perf_counter() - t0

    setup_seconds = None
    setup_components = None
    warm = None
    best_serial = None
    for attempt in range(2):  # one retry absorbs a transient worker death
        try:
            t_setup = time.perf_counter()
            with ShmCompressSession(cst, workers=parallel_ranks) as session:
                warm = session.compress(packed_streams)  # fork + 1st ingest
                setup_seconds = time.perf_counter() - t_setup
                setup_components = session.setup_components()
                best_dt = None
                best_serial = None
                # Warm and serial-equivalent draws interleave so whole-
                # machine drift hits both arms equally — their ratio is
                # a --smoke gate, and sequential blocks let a mid-bench
                # slowdown land on only one side.  Two extra draws over
                # the serial modes: the warm pool amortizes them, and
                # best-of needs more samples to shake scheduler noise
                # when workers share few cores.
                for _ in range(rounds + 2):
                    t0 = time.perf_counter()
                    warm = session.compress(packed_streams)
                    dt = time.perf_counter() - t0
                    best_dt = dt if best_dt is None else min(best_dt, dt)
                    ds = serial_equiv_once()
                    best_serial = (
                        ds if best_serial is None else min(best_serial, ds)
                    )
            rates["parallel"] = total / best_dt
            break
        except ShmPoolError:
            warm = None
    if warm is None:
        warm = par  # no fork: report the (serial-fallback) cold number
        rates["parallel"] = rates["parallel_cold"]
    if best_serial is None:
        for _ in range(rounds):
            ds = serial_equiv_once()
            best_serial = ds if best_serial is None else min(best_serial, ds)
    rates["parallel_serial_equiv"] = total / best_serial
    ser = comps["serial_equiv"]

    # Byte-identity across every mode.
    blob = _merged_blob(comps["reference"])
    for mode in ("callbacks", "stream", "packed_ingest"):
        assert _merged_blob(comps[mode]) == blob, (
            f"{name}: {mode} trace differs from reference")
    ser_blob = _merged_blob(ser)
    assert ser_blob == _merged_blob(par), (
        f"{name}: parallel trace differs from serial")
    assert ser_blob == _merged_blob(warm), (
        f"{name}: shm steady-state trace differs from serial")
    gauges = {f"{k}_events_per_s": v for k, v in rates.items()}
    if setup_components is not None:
        # Satellite gauges: the one-time pool cost by component, so the
        # lazy-ring/fork wins stay visible instead of one opaque number.
        for comp_name, secs in setup_components.items():
            gauges[f"parallel_setup_{comp_name}_seconds"] = secs
    publish_gauges(name, gauges)
    result = {
        "events": nevents,
        "rates": {k: round(v) for k, v in rates.items()},
    }
    if setup_seconds is not None:
        result["parallel_setup_seconds"] = round(setup_seconds, 4)
    if setup_components is not None:
        result["parallel_setup_components"] = {
            k: round(v, 4) for k, v in setup_components.items()
        }
    return result


def measure_obs_overhead(scale: int = 1, rounds: int = 9,
                         reps: int = 3) -> dict:
    """Paired metrics-on vs metrics-off cost of the batched ingestion path
    (fig11 shape, ``ingest_stream`` + ``publish_metrics``).

    Whole-machine throughput drifts between runs, so each round times the
    two configurations back to back (best-of-``reps`` each) and takes
    their ratio; the arm order alternates per round so monotone drift
    cancels in the median, and garbage is collected before each arm.
    The reported overhead is the *trimmed* median across ``rounds``: the
    top and bottom ``rounds // 4`` ratios are discarded before taking the
    median, so a couple of scheduler-spiked rounds (observed up to ~1.15
    on loaded CI boxes against a 1.03 limit) cannot drag the statistic
    over the gate.  The registry active on entry (if any) is restored."""
    import gc

    from repro import obs

    cst, stream, nevents = _shape("fig11", scale)
    outer = obs.disable()

    def run_once() -> None:
        comp = IntraProcessCompressor(cst)
        with obs.span("bench.ingest"):
            comp.ingest_stream(0, stream)
        registry = obs.active()
        if registry is not None:
            comp.publish_metrics(registry)

    def best_time(enabled: bool) -> float:
        if enabled:
            obs.enable()
        gc.collect()
        try:
            b = None
            for _ in range(reps):
                t0 = time.perf_counter()
                run_once()
                dt = time.perf_counter() - t0
                b = dt if b is None else min(b, dt)
            return b
        finally:
            if enabled:
                obs.disable()

    try:
        run_once()  # warm caches outside the timed rounds
        ratios = []
        for i in range(rounds):
            if i % 2 == 0:
                off = best_time(False)
                on = best_time(True)
            else:
                on = best_time(True)
                off = best_time(False)
            ratios.append(on / off)
    finally:
        if outer is not None:
            obs.enable(outer)
    ratios.sort()
    trim = rounds // 4 if rounds >= 4 else 0
    kept = ratios[trim:len(ratios) - trim] if trim else ratios
    median = kept[len(kept) // 2]
    result = {
        "events": nevents,
        "rounds": rounds,
        "trimmed": trim,
        "median_on_off_ratio": round(median, 4),
        "ratios": [round(r, 4) for r in ratios],
        "limit": OBS_OVERHEAD_LIMIT,
    }
    publish_gauges("obs_overhead", {"median_on_off_ratio": median})
    return result


def run_harness(scale: int = 1) -> dict:
    shapes = {name: measure_shape(name, scale) for name in SHAPE_NAMES}
    fig11 = shapes["fig11"]["rates"]
    return {
        "bench": "intra_ingestion",
        "baseline_pre_pr_events_per_s": BASELINE_PRE_PR,
        "shapes": shapes,
        "obs_overhead": measure_obs_overhead(scale),
        "speedup_stream_vs_pre_pr_live": round(
            fig11["stream"] / BASELINE_PRE_PR, 2),
        "speedup_stream_vs_pre_pr_paired": PAIRED_SPEEDUP_VS_PRE_PR,
        "speedup_stream_vs_reference": round(
            fig11["stream"] / fig11["reference"], 2),
        # Conservative regression floors: 25% of measured, absorbing
        # machine variance while still catching order-of-magnitude
        # regressions (a lost fast path, an accidental O(n) scan).
        "floors": {
            name: {
                mode: int(shapes[name]["rates"][mode] * 0.25)
                for mode in ("reference", "callbacks", "stream",
                             "packed_ingest")
            }
            for name in SHAPE_NAMES
        },
        # Machine-pinned acceptance ratios of the run-length ingest PR,
        # recomputed live on every full run (smoke re-derives them).
        "packed_ingest_vs_pre_pr_stream": {
            name: round(
                shapes[name]["rates"]["packed_ingest"]
                / STREAM_PRE_RUNS_PR[name], 2)
            for name in SHAPE_NAMES
        },
        "warm_parallel_vs_serial_equiv": {
            name: round(
                shapes[name]["rates"]["parallel"]
                / shapes[name]["rates"]["parallel_serial_equiv"], 3)
            for name in SHAPE_NAMES
        },
    }


def check_smoke() -> int:
    """CI gate: re-measure every shape, compare against the committed
    floors (fig11) and the machine-pinned run-length ingest ratios (all
    shapes)."""
    committed = json.loads(BENCH_JSON.read_text())
    floors = committed["floors"]["fig11"]
    measured = {
        name: measure_shape(name, scale=1, rounds=3)["rates"]
        for name in SHAPE_NAMES
    }
    rates = measured["fig11"]
    print(f"fig11 smoke: reference {rates['reference']:,} ev/s, "
          f"callbacks {rates['callbacks']:,} ev/s, "
          f"stream {rates['stream']:,} ev/s, "
          f"packed_ingest {rates['packed_ingest']:,} ev/s "
          f"(floors: {floors})")
    failed = 0
    for mode in ("reference", "callbacks", "stream", "packed_ingest"):
        floor = floors.get(mode)
        if floor is not None and rates[mode] < floor:
            print(f"FAIL: {mode} {rates[mode]:,} ev/s below committed "
                  f"floor {floor:,}")
            failed = 1
    # Machine-independent check: the fast path must beat the reference
    # path measured on the same machine in the same process.
    if rates["stream"] < 1.5 * rates["reference"]:
        print(f"FAIL: stream ({rates['stream']:,}) < 1.5x reference "
              f"({rates['reference']:,}) — fast path regressed")
        failed = 1
    # Machine-independent check: steady-state parallel ingest (warm shm
    # pool, pre-packed streams) must not fall under half the serial
    # stream rate on the same machine — catches a transport regression
    # (pickle sneaking back in, ring stalls, a lost columnar fast path)
    # without depending on core count.
    print(f"fig11 parallel steady-state: {rates['parallel']:,} ev/s "
          f"(cold {rates['parallel_cold']:,}, "
          f"serial-equiv {rates['parallel_serial_equiv']:,})")
    if rates["parallel"] < 0.5 * rates["stream"]:
        print(f"FAIL: parallel steady-state ({rates['parallel']:,}) < 0.5x "
              f"stream ({rates['stream']:,}) — shm transport regressed")
        failed = 1
    # Run-length ingest acceptance, per shape: packed ingest must beat
    # the pinned pre-PR streaming rate by 1.5x, and the warm pool must
    # keep 85% of its serial equivalent (same blobs, workers=None).
    for name in SHAPE_NAMES:
        r = measured[name]
        need = PACKED_INGEST_MIN_SPEEDUP * STREAM_PRE_RUNS_PR[name]
        ratio = r["parallel"] / r["parallel_serial_equiv"]
        print(f"{name}: packed_ingest {r['packed_ingest']:,} ev/s "
              f"(need {need:,.0f}), warm/serial-equiv {ratio:.3f} "
              f"(need {WARM_PARALLEL_MIN_RATIO:.2f})")
        if r["packed_ingest"] < need:
            print(f"FAIL: {name} packed_ingest {r['packed_ingest']:,} < "
                  f"{PACKED_INGEST_MIN_SPEEDUP}x pinned pre-PR stream "
                  f"{STREAM_PRE_RUNS_PR[name]:,} — run-collapsed ingest "
                  f"regressed")
            failed = 1
        if ratio < WARM_PARALLEL_MIN_RATIO:
            print(f"FAIL: {name} warm parallel ({r['parallel']:,}) < "
                  f"{WARM_PARALLEL_MIN_RATIO}x serial-equiv "
                  f"({r['parallel_serial_equiv']:,}) — warm-pool "
                  f"amortization regressed")
            failed = 1
    ov = measure_obs_overhead()
    print(f"fig11 metrics-on overhead: trimmed-median paired ratio "
          f"{ov['median_on_off_ratio']:.4f} over {ov['rounds']} rounds "
          f"(trim {ov['trimmed']}/side, limit {OBS_OVERHEAD_LIMIT:.2f})")
    if ov["median_on_off_ratio"] > OBS_OVERHEAD_LIMIT:
        print(f"FAIL: observability overhead {ov['median_on_off_ratio']:.4f} "
              f"exceeds {OBS_OVERHEAD_LIMIT:.2f} — a registry call leaked "
              f"onto the per-event path")
        failed = 1
    if not failed:
        print("OK: ingestion throughput above committed floors, "
              "observability overhead within limit")
    return failed


# ---------------------------------------------------------------------------
# pytest-benchmark entry points (quick comparisons vs the baselines).


def _drive_cypress(comp, loop_id, branch_id, iters):
    seq = 0
    comp.on_loop_push(0, loop_id)
    for i in range(iters):
        comp.on_loop_iter(0, loop_id)
        path = 0 if i % 2 == 0 else 1
        comp.on_branch_enter(0, branch_id, path)
        op = "MPI_Send" if path == 0 else "MPI_Recv"
        comp.on_event(0, CommEvent(op=op, rank=0, seq=seq, peer=1,
                                   tag=7, nbytes=4096))
        seq += 1
        comp.on_branch_exit(0, branch_id)
        comp.on_event(0, CommEvent(op="MPI_Allreduce", rank=0, seq=seq,
                                   nbytes=8))
        seq += 1
    comp.on_loop_pop(0, loop_id)


def _drive_flat(comp, iters):
    seq = 0
    for i in range(iters):
        op = "MPI_Send" if i % 2 == 0 else "MPI_Recv"
        comp.on_event(0, CommEvent(op=op, rank=0, seq=seq, peer=1,
                                   tag=7, nbytes=4096))
        seq += 1
        comp.on_event(0, CommEvent(op="MPI_Allreduce", rank=0, seq=seq,
                                   nbytes=8))
        seq += 1


def test_micro_cypress_throughput(benchmark):
    cst, (loop_id,), branch_id = _structure_ids()

    def run():
        comp = IntraProcessCompressor(cst)
        _drive_cypress(comp, loop_id, branch_id, N_EVENTS // 2)
        return comp

    comp = benchmark(run)
    # Compression happened: 3 leaf records total (send/recv/allreduce).
    assert comp.ctt(0).record_count() == 3


def test_micro_scalatrace_throughput(benchmark):
    def run():
        comp = ScalaTraceCompressor()
        _drive_flat(comp, N_EVENTS // 2)
        return comp

    comp = benchmark(run)
    assert len(comp.queue(0)) < 10  # folded into RSDs


def test_micro_scalatrace2_throughput(benchmark):
    def run():
        comp = ScalaTrace2Compressor()
        _drive_flat(comp, N_EVENTS // 2)
        return comp

    comp = benchmark(run)
    assert len(comp.queue(0)) < 10


def test_micro_summary(benchmark):
    """Events/second for each compressor, printed side by side."""
    cst, (loop_id,), branch_id = _structure_ids()

    def measure():
        out = {}
        t0 = time.perf_counter()
        comp = IntraProcessCompressor(cst)
        _drive_cypress(comp, loop_id, branch_id, N_EVENTS // 2)
        out["cypress"] = N_EVENTS / (time.perf_counter() - t0)
        t0 = time.perf_counter()
        _drive_flat(ScalaTraceCompressor(), N_EVENTS // 2)
        out["scalatrace"] = N_EVENTS / (time.perf_counter() - t0)
        t0 = time.perf_counter()
        _drive_flat(ScalaTrace2Compressor(), N_EVENTS // 2)
        out["scalatrace2"] = N_EVENTS / (time.perf_counter() - t0)
        return out

    rates = benchmark.pedantic(measure, rounds=3, iterations=1)
    emit(
        "micro_compressor",
        ["Microbench: compressor throughput (events/s, marker cost included "
         "for CYPRESS)"]
        + [f"  {k:12s} {v:12.0f}" for k, v in rates.items()],
    )
    assert rates["cypress"] > 0


# ---------------------------------------------------------------------------
# CLI: full harness (rewrites results/BENCH_intra.json) or --smoke gate.


def main(argv: list[str] | None = None) -> int:
    from repro import obs

    argv = sys.argv[1:] if argv is None else argv
    metrics_out = None
    if "--metrics-out" in argv:
        i = argv.index("--metrics-out")
        metrics_out = argv[i + 1]
        argv = argv[:i] + argv[i + 2:]
        obs.enable()
    try:
        if "--smoke" in argv:
            return check_smoke()
        result = run_harness()
    finally:
        if metrics_out is not None:
            registry = obs.disable()
            obs.write_json(registry, metrics_out)
            print(f"metrics -> {metrics_out}")
    print("intra-process ingestion throughput (events/s, best of 3):")
    modes = ("reference", "callbacks", "stream", "packed_ingest", "parallel")
    header = f"  {'shape':16s}" + "".join(f"{m:>14s}" for m in modes)
    print(header)
    for name, shape in result["shapes"].items():
        r = shape["rates"]
        print(f"  {name:16s}" + "".join(f"{r[m]:14,d}" for m in modes))
    for name in SHAPE_NAMES:
        print(f"  {name}: packed_ingest "
              f"{result['packed_ingest_vs_pre_pr_stream'][name]:.2f}x "
              f"pre-PR stream, warm/serial-equiv "
              f"{result['warm_parallel_vs_serial_equiv'][name]:.3f}")
    print(f"  fig11 stream vs pre-PR baseline "
          f"({BASELINE_PRE_PR:,} ev/s): "
          f"{result['speedup_stream_vs_pre_pr_live']:.2f}x live, "
          f"{PAIRED_SPEEDUP_VS_PRE_PR:.2f}x paired (committed)")
    ov = result["obs_overhead"]
    print(f"  fig11 metrics-on overhead: median paired ratio "
          f"{ov['median_on_off_ratio']:.4f} (limit {ov['limit']:.2f})")
    blob = json.dumps(result, indent=2) + "\n"
    RESULTS_DIR.mkdir(exist_ok=True)
    BENCH_JSON.write_text(blob)
    BENCH_JSON_ROOT.write_text(blob)
    print(f"wrote {BENCH_JSON} (mirrored to {BENCH_JSON_ROOT})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
