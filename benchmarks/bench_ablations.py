"""Ablation benches for the design choices DESIGN.md calls out.

* **Leaf matching window** (paper §IV-A: "Potentially one can set a
  larger sliding window ... trade-off between cost and compression
  effectiveness"): unbounded keyed merge (repo default) vs window=1 (the
  paper's implementation) vs intermediate windows, on MG whose per-level
  cycling message sizes make the difference dramatic.
* **Timing mode**: mean+std vs histogram — size cost of the richer
  distribution (paper supports both, §IV-A).
* **Relative vs absolute rank encoding** (paper §IV-B): effect on the
  inter-process group count and merged size.
* **Merge schedule**: binary reduction tree vs sequential fold (paper
  §IV-B: O(n log P) parallel merge).
"""

import time

import pytest

from repro.core.inter import merge_all
from repro.core.intra import CypressConfig, IntraProcessCompressor
from repro.core.serialize import dumps
from repro.driver import run_compiled
from repro.static.instrument import compile_minimpi
from repro.workloads import get

from .common import SCALE, emit, fmt_row, procs_for


def _compress(name, nprocs, config=None):
    w = get(name)
    compiled = compile_minimpi(w.source)
    comp = IntraProcessCompressor(compiled.cst, config=config)
    run_compiled(compiled, nprocs, defines=w.defines(nprocs, SCALE), tracer=comp)
    return comp


class TestWindowAblation:
    def test_window_sweep_on_mg(self, benchmark):
        nprocs = procs_for("mg")[0]

        def build():
            rows = []
            for window in (1, 2, 8, None):
                comp = _compress(
                    "mg", nprocs, CypressConfig(window=window)
                )
                merged = merge_all([comp.ctt(r) for r in range(nprocs)])
                rows.append((window, len(dumps(merged)),
                             merged.group_count()))
            return rows

        rows = benchmark.pedantic(build, rounds=1, iterations=1)
        widths = [10, 12, 10]
        lines = [
            f"Ablation: leaf matching window (MG, {nprocs} procs)",
            fmt_row(["window", "bytes", "groups"], widths),
        ]
        for window, nbytes, groups in rows:
            label = "unbounded" if window is None else str(window)
            lines.append(fmt_row([label, nbytes, groups], widths))
        emit("ablation_window", lines)

        sizes = {w: b for w, b, _ in rows}
        # Larger windows strictly help on cyclic-parameter codes; the
        # unbounded keyed merge is the best.
        assert sizes[None] < sizes[2] <= sizes[1]
        assert sizes[None] < sizes[1] / 2


class TestTimingModeAblation:
    def test_histogram_costs_more(self, benchmark):
        nprocs = procs_for("lu")[0]

        def build():
            out = {}
            for mode in ("meanstd", "hist"):
                comp = _compress(
                    "lu", nprocs, CypressConfig(timing_mode=mode)
                )
                merged = merge_all([comp.ctt(r) for r in range(nprocs)])
                out[mode] = len(dumps(merged))
            return out

        sizes = benchmark.pedantic(build, rounds=1, iterations=1)
        emit(
            "ablation_timing",
            [
                f"Ablation: timing mode (LU, {nprocs} procs)",
                f"  mean+std : {sizes['meanstd']} bytes",
                f"  histogram: {sizes['hist']} bytes "
                f"(+{100 * (sizes['hist'] / sizes['meanstd'] - 1):.0f}%)",
            ],
        )
        assert sizes["hist"] > sizes["meanstd"]
        assert sizes["hist"] < sizes["meanstd"] * 3  # still bounded


class TestRankEncodingAblation:
    def test_relative_ranks_enable_grouping(self, benchmark):
        nprocs = procs_for("leslie3d")[1]

        def build():
            out = {}
            for relative in (True, False):
                comp = _compress(
                    "leslie3d", nprocs,
                    CypressConfig(relative_ranks=relative),
                )
                merged = merge_all([comp.ctt(r) for r in range(nprocs)])
                out[relative] = (len(dumps(merged)), merged.group_count())
            return out

        result = benchmark.pedantic(build, rounds=1, iterations=1)
        emit(
            "ablation_ranks",
            [
                f"Ablation: rank encoding (LESlie3d, {nprocs} procs)",
                f"  relative: {result[True][0]} bytes, "
                f"{result[True][1]} groups",
                f"  absolute: {result[False][0]} bytes, "
                f"{result[False][1]} groups",
            ],
        )
        assert result[True][1] < result[False][1]
        assert result[True][0] < result[False][0]


class TestMarkerOverheadAblation:
    def test_marker_cost_alone(self, benchmark):
        """How much of CYPRESS's runtime overhead is the instrumentation
        itself (the PMPI_COMM_Structure bracketing, paper Fig. 9) versus
        the record compression?  Compares: untraced run, markers-into-a-
        null-consumer, and the full compressor."""
        from repro.driver import run_compiled
        from repro.mpisim.pmpi import NullSink, TimingSink, TraceSink
        from repro.static.instrument import compile_minimpi
        from repro.workloads import get

        class MarkerOnlySink(TraceSink):
            wants_markers = True

        w = get("mg")
        nprocs = procs_for("mg")[0]
        defines = w.defines(nprocs, SCALE)
        compiled = compile_minimpi(w.source)

        def run_all():
            t0 = time.perf_counter()
            run_compiled(compiled, nprocs, defines=defines, tracer=NullSink())
            base = time.perf_counter() - t0
            markers = TimingSink(MarkerOnlySink())
            run_compiled(compiled, nprocs, defines=defines, tracer=markers)
            full = TimingSink(IntraProcessCompressor(compiled.cst))
            run_compiled(compiled, nprocs, defines=defines, tracer=full)
            return base, markers.elapsed, full.elapsed

        base, markers, full = benchmark.pedantic(run_all, rounds=1, iterations=1)
        emit(
            "ablation_markers",
            [
                f"Ablation: instrumentation cost alone (MG, {nprocs} procs)",
                f"  untraced run        : {base:.3f}s",
                f"  markers only        : {markers:.3f}s sink time",
                f"  markers + compress  : {full:.3f}s sink time",
            ],
        )
        assert markers < full  # compression costs more than bracketing


class TestMergeScheduleAblation:
    @pytest.mark.parametrize("schedule", ["tree", "fold"])
    def test_schedules_equivalent_output(self, benchmark, schedule):
        nprocs = procs_for("bt")[0]
        comp = _compress("bt", nprocs)
        ctts = [comp.ctt(r) for r in range(nprocs)]
        merged = benchmark.pedantic(
            lambda: merge_all(ctts, schedule=schedule), rounds=3, iterations=1
        )
        assert merged.nranks_merged == nprocs

    def test_tree_critical_path_shallower(self, benchmark):
        """The O(n log P) claim is about *parallel* depth: the tree
        schedule needs ceil(log2 P) rounds of concurrent pair merges vs
        P-1 sequential ones.  We time both and report; wall time in this
        single-threaded harness is similar, the depth differs."""
        import math

        nprocs = procs_for("cg")[-1]
        comp = _compress("cg", nprocs)
        ctts = [comp.ctt(r) for r in range(nprocs)]

        def run_both():
            t0 = time.perf_counter()
            merge_all(ctts, schedule="tree")
            tree = time.perf_counter() - t0
            t0 = time.perf_counter()
            merge_all(ctts, schedule="fold")
            fold = time.perf_counter() - t0
            return tree, fold

        tree, fold = benchmark.pedantic(run_both, rounds=1, iterations=1)
        depth_tree = math.ceil(math.log2(nprocs))
        depth_fold = nprocs - 1
        emit(
            "ablation_merge_schedule",
            [
                f"Ablation: merge schedule (CG, {nprocs} procs)",
                f"  tree: {tree:.4f}s wall, parallel depth {depth_tree}",
                f"  fold: {fold:.4f}s wall, parallel depth {depth_fold}",
            ],
        )
        assert depth_tree < depth_fold
