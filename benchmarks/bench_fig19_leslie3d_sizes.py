"""Figure 19 — compressed LESlie3d trace sizes for Gzip, ScalaTrace and
CYPRESS across process counts.

Paper: CYPRESS ~1.5 orders of magnitude below ScalaTrace and ~4 below
Gzip.  Asserted shape: CYPRESS < ScalaTrace < Gzip at every grid point
and Gzip grows ~linearly while CYPRESS stays near-flat.
"""

from .common import SCALE, emit, fmt_row, measurement, procs_for, size_kb

SERIES = ("gzip", "scalatrace", "cypress")


def test_fig19_table(benchmark):
    def build():
        rows = []
        for nprocs in procs_for("leslie3d"):
            m = measurement("leslie3d", nprocs)
            rows.append((nprocs, {s: size_kb(m, s) for s in SERIES}))
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)

    widths = [6, 14, 14, 14]
    lines = [
        f"Figure 19: LESlie3d compressed trace size (KB), scale={SCALE}",
        fmt_row(["procs", "Gzip", "ScalaTrace", "Cypress"], widths),
    ]
    for nprocs, sizes in rows:
        lines.append(
            fmt_row([nprocs] + [f"{sizes[s]:.2f}" for s in SERIES], widths)
        )
    emit("fig19", lines)

    for nprocs, sizes in rows:
        assert sizes["cypress"] < sizes["scalatrace"], f"@{nprocs}"
        assert sizes["cypress"] < sizes["gzip"], f"@{nprocs}"
    first, last = rows[0], rows[-1]
    growth = last[0] / first[0]
    assert last[1]["gzip"] > first[1]["gzip"] * growth / 3  # ~linear
    assert last[1]["cypress"] < first[1]["cypress"] * growth / 2  # sub-linear
