"""Figure 18 — inter-process trace compression overhead (seconds, the
merge at MPI_Finalize) for ScalaTrace / ScalaTrace2 / CYPRESS on BT, CG,
LU, MG and SP.

Paper headline (§VII-C2): 1.5-2 orders of magnitude improvement over
ScalaTrace for the regular codes (O(n) CTT merge vs O(n²) alignment), and
2-5x over ScalaTrace-2 for MG/SP; averages 170.69% / 30.3% / 3.29%.
We assert CYPRESS < ScalaTrace on every point and summarise averages.
"""

import pytest

from .common import SCALE, emit, fmt_row, measurement, procs_for

WORKLOADS = ("bt", "cg", "lu", "mg", "sp")
METHODS = ("scalatrace", "scalatrace2", "cypress")


@pytest.mark.parametrize("name", WORKLOADS)
def test_fig18_table(benchmark, name):
    def build():
        rows = []
        for nprocs in procs_for(name):
            m = measurement(name, nprocs)
            rows.append(
                (nprocs, {k: m.methods[k].inter_seconds for k in METHODS})
            )
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)

    widths = [6, 14, 14, 14]
    lines = [
        f"Figure 18 ({name.upper()}): inter-process merge time (s), "
        f"scale={SCALE}",
        fmt_row(["procs", *METHODS], widths),
    ]
    for nprocs, secs in rows:
        lines.append(
            fmt_row(
                [nprocs] + [f"{secs[k]:.4f}" for k in METHODS], widths
            )
        )
    emit(f"fig18_{name}", lines)

    # Strictness is calibrated to how much alignment work the kernel
    # leaves ScalaTrace.  MG (nested tori) and SP (varied parameters) are
    # the paper's headline cases — ScalaTrace's O(n^2) alignment must lose
    # outright (at the paper's grid, SP shows a ~100x gap, matching
    # Fig. 18's 10^2-10^3 s points).  BT/CG/LU fold to small per-rank
    # queues, so the separation has little to chew on and Python constant
    # factors (CYPRESS's per-rank signature construction grows with P)
    # dominate — there the bound is parity with slack.
    if name in ("mg", "sp"):
        for nprocs, secs in rows:
            assert secs["cypress"] < secs["scalatrace"], f"{name}@{nprocs}"
    else:
        for nprocs, secs in rows:
            assert secs["cypress"] < secs["scalatrace"] * 2 + 1.0, (
                f"{name}@{nprocs}"
            )


def test_fig18_average_summary(benchmark):
    def build():
        total = {k: 0.0 for k in METHODS}
        base = 0.0
        n = 0
        for name in WORKLOADS:
            for nprocs in procs_for(name):
                m = measurement(name, nprocs)
                for k in METHODS:
                    total[k] += m.methods[k].inter_seconds
                base += m.base_seconds
                n += 1
        return {k: 100.0 * v / base for k, v in total.items()}

    pct = benchmark.pedantic(build, rounds=1, iterations=1)
    lines = [
        "Figure 18 summary: inter-process overhead as % of execution time "
        "(paper: ScalaTrace 170.69%, ScalaTrace2 30.3%, Cypress 3.29%)",
    ] + [f"  {k:12s} {v:8.1f}%" for k, v in pct.items()]
    emit("fig18_summary", lines)
    assert pct["cypress"] < pct["scalatrace"]


def test_fig18_merge_complexity_scaling(benchmark):
    """Direct asymptotics check: CYPRESS merge input is the CTT (constant
    in trace length), ScalaTrace merge is the compressed queue (grows when
    patterns do not fold).  Benchmarks the CYPRESS merge itself."""
    from repro.core.inter import merge_all
    from repro.core.intra import IntraProcessCompressor
    from repro.driver import run_compiled
    from repro.static.instrument import compile_minimpi
    from repro.workloads import get

    w = get("lu")
    nprocs = procs_for("lu")[-1]
    compiled = compile_minimpi(w.source)
    comp = IntraProcessCompressor(compiled.cst)
    run_compiled(compiled, nprocs, defines=w.defines(nprocs, SCALE), tracer=comp)
    ctts = [comp.ctt(r) for r in range(nprocs)]

    merged = benchmark.pedantic(
        lambda: merge_all(ctts, schedule="tree"), rounds=3, iterations=1
    )
    assert merged.nranks_merged == nprocs
