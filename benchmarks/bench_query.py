"""Query-engine latency vs replay-then-analyze (the §VII-D claim).

The point of the decompression-free query layer is that analysis cost
tracks the *compressed* size, not the trace length.  This bench traces
three shapes with very different compression ratios —

* ``fig11`` — the paper's Fig. 11 loop (branch pair + collective) with a
  large iteration count: thousands of events per rank collapse into a
  handful of stride tuples, so the compressed form is tiny and the
  engine's advantage should be largest;
* ``cg`` — a regular NPB-style halo/allreduce kernel (high compression);
* ``farm`` — a master/worker shape with data-dependent branching (the
  adversarial, lower-compression case);

then times, for each shape:

* **engine** — all four queries (traffic by op + rank_pair, one
  ordering, one rank_profile, critical_leaves) straight off the merged
  CTT;
* **replay** — one ``decompress_all`` plus the same four answers
  computed from the replayed events (the oracle twins, fed the shared
  replay so the baseline is not charged four times for decompression).

Reported per shape: events, best-of-N latency for both sides, and the
speedup.  The acceptance bar (``--smoke``, CI) is a ≥5× win on at least
one high-compression shape.  Results go to ``results/bench_query.json``
/ ``.txt`` and, when a metrics registry is active, ``bench.query.*``
gauges.
"""

from __future__ import annotations

import json
import sys
import time

from repro import query
from repro.core import run_cypress
from repro.workloads import get

from .common import RESULTS_DIR, SCALE, emit, fmt_row, publish_gauges

# Fig. 11 shape, scaled up: one loop whose body alternates a branch pair
# and a collective.  ITERS iterations × 2 events × nprocs ranks of raw
# trace compress into O(1) stride tuples.
FIG11_SOURCE = """
func main() {
  mpi_init();
  var rank = mpi_comm_rank();
  var size = mpi_comm_size();
  for (var i = 0; i < iters; i = i + 1) {
    if (rank % 2 == 0) {
      mpi_send((rank + 1) % size, 4096, 7);
    } else {
      mpi_recv((rank + size - 1) % size, 4096, 7);
    }
    mpi_allreduce(8);
  }
  mpi_finalize();
}
"""

FIG11_ITERS = 2000
REPEAT = 5


def _trace_fig11(nprocs: int = 8):
    iters = max(50, int(FIG11_ITERS * SCALE))
    run = run_cypress(FIG11_SOURCE, nprocs, defines={"iters": iters})
    return run.merge(), run.run_result.total_events


def _trace_workload(name: str):
    w = get(name)
    nprocs = min((p for p in w.valid_procs if p >= 4), default=min(w.valid_procs))
    run = run_cypress(w.source, nprocs, defines=w.defines(nprocs, SCALE))
    return run.merge(), run.run_result.total_events


def _pick_gids(merged) -> tuple[int, int, int]:
    """Two call-site GIDs with events for some rank, plus that rank."""
    index = query.TreeIndex(merged)
    from repro.static.cst import CALL

    for vertex in merged.root.preorder():
        if vertex.kind != CALL:
            continue
        for group in vertex.groups.values():
            if group.ranks and group.records:
                rank = group.ranks[0]
                gids = [
                    v.gid for v in merged.root.preorder()
                    if v.kind == CALL and v.group_of(rank) is not None
                ]
                if len(gids) >= 2:
                    return gids[0], gids[-1], rank
    return 1, 1, 0  # pragma: no cover - every traced shape has leaves


def _engine_pass(merged, gid_a: int, gid_b: int, rank: int) -> None:
    query.traffic(merged, group_by="op")
    query.traffic(merged, group_by="rank_pair")
    query.ordering(merged, gid_a, gid_b, rank)
    query.rank_profile(merged, rank)
    query.critical_leaves(merged, k=10)


def _replay_pass(merged, gid_a: int, gid_b: int, rank: int) -> None:
    from repro.core.decompress import decompress_all

    traces = decompress_all(merged)
    query.traffic_via_replay(merged, group_by="op", traces=traces)
    query.traffic_via_replay(merged, group_by="rank_pair", traces=traces)
    query.ordering_via_replay(merged, gid_a, gid_b, rank,
                              events=traces[rank])
    query.rank_profile_via_replay(merged, rank, events=traces[rank])
    query.critical_leaves_via_replay(merged, k=10, traces=traces)


def _best_of(fn, *args) -> float:
    best = float("inf")
    for _ in range(REPEAT):
        t0 = time.perf_counter()
        fn(*args)
        best = min(best, time.perf_counter() - t0)
    return best


def measure_shape(label: str, merged, events: int) -> dict:
    gid_a, gid_b, rank = _pick_gids(merged)
    # Materialize lazy group records once so neither side pays the
    # first-touch cost inside its timed region.
    _engine_pass(merged, gid_a, gid_b, rank)
    engine_s = _best_of(_engine_pass, merged, gid_a, gid_b, rank)
    replay_s = _best_of(_replay_pass, merged, gid_a, gid_b, rank)
    return {
        "shape": label,
        "events": events,
        "engine_ms": engine_s * 1e3,
        "replay_ms": replay_s * 1e3,
        "speedup": replay_s / engine_s if engine_s > 0 else float("inf"),
    }


def run_bench(smoke: bool = False) -> dict:
    shapes = []
    merged, events = _trace_fig11()
    shapes.append(("fig11", merged, events))
    if not smoke:
        for name in ("cg", "farm"):
            m, e = _trace_workload(name)
            shapes.append((name, m, e))
    rows = [measure_shape(label, m, e) for label, m, e in shapes]

    widths = [8, 10, 12, 12, 9]
    lines = [
        "query latency: engine (compressed walk) vs replay-then-analyze",
        fmt_row(["shape", "events", "engine(ms)", "replay(ms)", "speedup"],
                widths),
    ]
    for r in rows:
        lines.append(fmt_row(
            [r["shape"], r["events"], f"{r['engine_ms']:.2f}",
             f"{r['replay_ms']:.2f}", f"{r['speedup']:.1f}x"], widths))
    emit("bench_query", lines)

    result = {"rows": rows, "repeat": REPEAT}
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "bench_query.json").write_text(
        json.dumps(result, indent=2) + "\n")
    for r in rows:
        publish_gauges(f"query.{r['shape']}", {
            "engine_ms": r["engine_ms"],
            "replay_ms": r["replay_ms"],
            "speedup": r["speedup"],
        })

    best = max(r["speedup"] for r in rows)
    # Acceptance bar: the engine must beat replay-then-analyze by ≥5× on
    # at least one high-compression shape.
    assert best >= 5.0, (
        f"query engine speedup {best:.1f}x < 5x on every shape — "
        f"decompression-free walk lost its advantage"
    )
    print(f"\nbest speedup {best:.1f}x (floor 5x) — OK")
    return result


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    run_bench(smoke="--smoke" in argv)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
