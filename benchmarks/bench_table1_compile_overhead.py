"""Table I — compilation overhead of the CYPRESS static pass.

Compiles every NPB kernel with and without the CST extraction and reports
the added time.  Paper: average 8.27% overhead, worst case 27.72% (EP,
whose tiny base compile amplifies the fixed pass cost); absolute CST
build time <= 0.25 s.  Asserted shape: the average overhead stays modest
(< 150% — the MiniMPI baseline compile is far cheaper than a real
compiler's, which inflates the ratio) and the absolute pass cost stays
under a second per program.
"""

import time

from repro.static.instrument import compile_minimpi
from repro.workloads import WORKLOADS

from .common import emit, fmt_row

NPB = ("bt", "cg", "dt", "ep", "ft", "lu", "mg", "sp")
REPEATS = 20


def _compile_times(source: str) -> tuple[float, float]:
    """Best-of-N compile time without and with the CYPRESS pass."""
    without = min(
        _timed(lambda: compile_minimpi(source, cypress=False))
        for _ in range(REPEATS)
    )
    with_pass = min(
        _timed(lambda: compile_minimpi(source, cypress=True))
        for _ in range(REPEATS)
    )
    return without, with_pass


def _timed(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def test_table1_compile_overhead(benchmark):
    def build():
        rows = []
        for name in NPB:
            w = WORKLOADS[name]
            t_without, t_with = _compile_times(w.source)
            overhead = 100.0 * (t_with - t_without) / t_without
            rows.append((name, t_without, t_with, overhead))
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)

    widths = [6, 14, 14, 12]
    lines = [
        "Table I: compilation overhead of CYPRESS (ms; paper reports "
        "seconds for a full LLVM build)",
        fmt_row(["prog", "w/o CYPRESS", "w/ CYPRESS", "overhead%"], widths),
    ]
    for name, t0, t1, pct in rows:
        lines.append(
            fmt_row(
                [name, f"{t0 * 1000:.3f}", f"{t1 * 1000:.3f}", f"{pct:.1f}"],
                widths,
            )
        )
    avg = sum(r[3] for r in rows) / len(rows)
    lines.append(f"average overhead: {avg:.1f}%  (paper: 8.27%)")
    emit("table1", lines)

    # The pass itself is cheap in absolute terms...
    for name, t0, t1, _pct in rows:
        assert t1 - t0 < 1.0, name
    # ...and not a multiple of the baseline compile.
    assert avg < 150.0


def test_table1_pass_cost_benchmark(benchmark):
    """Benchmark the static pass alone on the largest kernel (SP)."""
    source = WORKLOADS["sp"].source
    compiled = benchmark(lambda: compile_minimpi(source, cypress=True))
    assert compiled.cst.size() > 10
