"""Shared infrastructure for the figure/table benchmarks.

Every ``bench_*`` module regenerates one table or figure of the paper's
evaluation (§VII).  Absolute numbers differ from the paper (the substrate
is a simulator and the iteration counts are scaled), but each bench prints
the same rows/series the paper reports and asserts the qualitative
*shape* (who wins, direction of scaling).

Two grids are available:

* the default **quick** grid (small process counts, scaled iterations) —
  minutes for the whole suite;
* the **paper** grid (process counts from the paper; set ``REPRO_FULL=1``)
  — the full evaluation, substantially slower.

Tables are printed to stdout and written to ``results/``.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.analysis.stats import RunMeasurement, measure_all_methods
from repro.workloads import get

FULL = os.environ.get("REPRO_FULL", "") == "1"
SCALE = float(os.environ.get("REPRO_SCALE", "1.0" if FULL else "0.4"))

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"

# Process-count grids per workload: (quick, paper — Fig. 15's x axes).
_GRIDS: dict[str, tuple[tuple[int, ...], tuple[int, ...]]] = {
    "bt": ((9, 16, 36), (64, 121, 256, 400)),
    "sp": ((9, 16, 36), (64, 121, 256, 400)),
    "cg": ((8, 16, 32), (64, 128, 256, 512)),
    "ep": ((8, 16, 32), (64, 128, 256, 512)),
    "ft": ((8, 16, 32), (64, 128, 256, 512)),
    "lu": ((8, 16, 32), (64, 128, 256, 512)),
    "mg": ((8, 16, 32), (64, 128, 256, 512)),
    "dt": ((9, 17, 33), (48, 64, 128, 256)),
    "leslie3d": ((8, 16, 32), (32, 64, 128, 256, 512)),
}

METHOD_LABELS = {
    "gzip": "Gzip",
    "scalatrace": "ScalaTrace",
    "scalatrace2": "ScalaTrace2",
    "scalatrace2+gzip": "ScalaTrace2+Gzip",
    "cypress": "Cypress",
    "cypress+gzip": "Cypress+Gzip",
}


def procs_for(name: str) -> tuple[int, ...]:
    quick, paper = _GRIDS[name]
    return paper if FULL else quick


# Session-level measurement cache: (workload, nprocs) -> RunMeasurement.
_CACHE: dict[tuple[str, int], RunMeasurement] = {}


def measurement(name: str, nprocs: int) -> RunMeasurement:
    key = (name, nprocs)
    if key not in _CACHE:
        _CACHE[key] = measure_all_methods(get(name), nprocs, scale=SCALE)
    return _CACHE[key]


def size_kb(m: RunMeasurement, method: str) -> float:
    """Trace size in KB for a method label (supports the +Gzip variants)."""
    if method.endswith("+gzip"):
        base = m.methods[method[: -len("+gzip")]]
        return (base.gzip_bytes or base.trace_bytes) / 1024
    r = m.methods[method]
    if method == "gzip":
        # The "Gzip" series of Fig. 15 is the gzip-compressed raw trace.
        return (r.gzip_bytes or r.trace_bytes) / 1024
    return r.trace_bytes / 1024


def emit(name: str, lines: list[str]) -> None:
    """Print a table and persist it under results/ (paper-scale runs get
    a ``_full`` suffix so quick-grid tables are not overwritten)."""
    text = "\n".join(lines)
    print("\n" + text)
    RESULTS_DIR.mkdir(exist_ok=True)
    suffix = "_full" if FULL else ""
    (RESULTS_DIR / f"{name}{suffix}.txt").write_text(text + "\n")


def publish_gauges(prefix: str, values: dict) -> None:
    """Re-emit bench measurements through the observability registry (as
    ``bench.{prefix}.{key}`` gauges) when one is active; no-op otherwise."""
    from repro import obs

    registry = obs.active()
    if registry is None:
        return
    for key, value in values.items():
        registry.gauge_set(f"bench.{prefix}.{key}", float(value))


def fmt_row(cells: list, widths: list[int]) -> str:
    return "  ".join(str(c).rjust(w) for c, w in zip(cells, widths))
