"""Figure 21 — SIM-MPI performance prediction of LESlie3d from the
decompressed CYPRESS traces: measured vs predicted execution time plus
the communication-time percentage, across process counts.

Paper: average prediction error 5.9%; communication fraction rises from
2.85% (32 procs) to 32.47% (512).  Asserted shape: average error below
15% (the LogGP fit against the piecewise machine carries honest model
error), and a monotone-increasing communication fraction.
"""

from repro.core import run_cypress
from repro.core.decompress import decompress_rank
from repro.replay import fit_loggp, predict
from repro.workloads import get

from .common import FULL, SCALE, emit, fmt_row

PROCS = (32, 64, 128, 256, 512) if FULL else (8, 16, 32, 64)


def test_fig21_prediction(benchmark):
    params = fit_loggp(reps=3)

    def build():
        rows = []
        w = get("leslie3d")
        for nprocs in PROCS:
            run = run_cypress(w.source, nprocs, defines=w.defines(nprocs, SCALE))
            measured = run.run_result.elapsed
            # Per-rank replay: SIM-MPI needs each rank's own sequential
            # computation times.  The paper obtains these separately via
            # deterministic replay on one node (§V); here they live in the
            # per-rank CTTs.  (The merged job-wide trace averages timing
            # across grouped ranks — fine for volume/pattern analysis,
            # too coarse for timing prediction of position-dependent
            # stencils.)
            traces = {
                r: decompress_rank(run.compressor.ctt(r))
                for r in range(nprocs)
            }
            sim = predict(traces, params)
            rows.append(
                (nprocs, measured, sim.elapsed, sim.comm_fraction())
            )
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)

    widths = [6, 14, 14, 10, 10]
    lines = [
        f"Figure 21: LESlie3d measured vs predicted time (us), scale={SCALE}",
        f"LogGP fit: L={params.L:.2f}us o={params.o:.2f}us "
        f"G={params.G * 1e3:.3f}ns/B",
        fmt_row(["procs", "measured", "predicted", "err%", "comm%"], widths),
    ]
    errors = []
    for nprocs, measured, predicted, comm in rows:
        err = 100.0 * abs(predicted - measured) / measured
        errors.append(err)
        lines.append(
            fmt_row(
                [nprocs, f"{measured:.0f}", f"{predicted:.0f}",
                 f"{err:.1f}", f"{comm * 100:.1f}"],
                widths,
            )
        )
    avg_err = sum(errors) / len(errors)
    lines.append(f"average prediction error: {avg_err:.1f}%  (paper: 5.9%)")
    emit("fig21", lines)

    assert avg_err < 15.0, f"average prediction error {avg_err:.1f}%"
    # Communication fraction grows with the number of processes.
    fractions = [r[3] for r in rows]
    assert fractions[-1] > fractions[0]
