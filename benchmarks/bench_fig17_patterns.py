"""Figure 17 — communication patterns of MG and SP at 64 processes
(volume heatmaps extracted from the compressed traces).

Asserted shape: MG exhibits the nested-torus structure (short- and
long-stride partners, different partner sets across ranks); SP's diagonal
wrap pattern touches row, column and diagonal neighbours.  The heatmaps
are emitted as ASCII art into results/.
"""

import numpy as np

from repro.analysis.patterns import ascii_heatmap, communication_matrix
from repro.core import run_cypress
from repro.workloads import get

from .common import FULL, SCALE, emit

NPROCS = 64 if FULL else 16


def _matrix(name, nprocs):
    w = get(name)
    run = run_cypress(w.source, nprocs, defines=w.defines(nprocs, SCALE))
    return communication_matrix(run.merge(), nprocs)


def test_fig17a_mg_pattern(benchmark):
    matrix = benchmark.pedantic(
        lambda: _matrix("mg", NPROCS), rounds=1, iterations=1
    )
    emit(
        "fig17a_mg",
        [
            f"Figure 17a: MG communication pattern ({NPROCS} procs), "
            f"total {matrix.sum() // 1024} KB",
            ascii_heatmap(matrix),
        ],
    )
    # Nested torus: rank 0 has both unit-stride and long-stride partners.
    partners0 = set(np.nonzero(matrix[0])[0].tolist())
    assert any(p <= 2 for p in partners0)
    assert any(p >= NPROCS // 4 for p in partners0)
    # Irregularity: not all ranks have the same number of partners.
    degree = (matrix > 0).sum(axis=1)
    assert degree.min() < degree.max()


def test_fig17b_sp_pattern(benchmark):
    import math

    nprocs = 64 if FULL else 16
    matrix = benchmark.pedantic(
        lambda: _matrix("sp", nprocs), rounds=1, iterations=1
    )
    emit(
        "fig17b_sp",
        [
            f"Figure 17b: SP communication pattern ({nprocs} procs), "
            f"total {matrix.sum() // 1024} KB",
            ascii_heatmap(matrix),
        ],
    )
    p = int(math.isqrt(nprocs))
    # Multi-partition: rank 0 sends along its row (+1), column (+p) and
    # the wrapped diagonal (+p+1).
    assert matrix[0, 1] > 0
    assert matrix[0, p] > 0
    assert matrix[0, p + 1] > 0
    # Non-uniform volumes (varied message sizes per rank position).
    nonzero = matrix[matrix > 0]
    assert nonzero.min() < nonzero.max()
