"""CLI smoke tests."""

import pytest

from repro.cli import main


class TestCompare:
    def test_compare_prints_table(self, capsys):
        assert main(["compare", "ep", "-n", "4", "--scale", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "cypress" in out and "scalatrace" in out


class TestTraceReplayPredict:
    def test_pipeline(self, tmp_path, capsys):
        trace = str(tmp_path / "t.cyp")
        assert main(
            ["trace", "leslie3d", "-n", "8", "--scale", "0.2", "-o", trace]
        ) == 0
        assert main(["replay", trace, "-r", "0", "--limit", "5"]) == 0
        out = capsys.readouterr().out
        assert "MPI_" in out
        assert main(["predict", trace]) == 0
        out = capsys.readouterr().out
        assert "predicted time" in out

    def test_gzip_output(self, tmp_path):
        trace = str(tmp_path / "t.cyp.gz")
        assert main(
            ["trace", "ep", "-n", "4", "--scale", "0.5", "-o", trace, "--gzip"]
        ) == 0
        with open(trace, "rb") as fh:
            assert fh.read(2) == b"\x1f\x8b"


class TestCst:
    def test_cst_from_file(self, tmp_path, capsys):
        path = tmp_path / "prog.mpi"
        path.write_text(
            "func main() { for (var i = 0; i < 3; i = i + 1) { mpi_barrier(); } }"
        )
        assert main(["cst", str(path)]) == 0
        out = capsys.readouterr().out
        assert "loop" in out and "mpi_barrier" in out


class TestPatterns:
    def test_heatmap(self, capsys):
        assert main(["patterns", "leslie3d", "-n", "8", "--scale", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "message sizes" in out


class TestValidation:
    def test_bad_proc_count(self):
        with pytest.raises(ValueError):
            main(["trace", "bt", "-n", "7"])

    def test_unknown_workload(self):
        with pytest.raises(SystemExit):
            main(["trace", "nope", "-n", "4"])
