"""CLI smoke tests."""

import pytest

from repro.cli import main


class TestCompare:
    def test_compare_prints_table(self, capsys):
        assert main(["compare", "ep", "-n", "4", "--scale", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "cypress" in out and "scalatrace" in out


class TestTraceReplayPredict:
    def test_pipeline(self, tmp_path, capsys):
        trace = str(tmp_path / "t.cyp")
        assert main(
            ["trace", "leslie3d", "-n", "8", "--scale", "0.2", "-o", trace]
        ) == 0
        assert main(["replay", trace, "-r", "0", "--limit", "5"]) == 0
        out = capsys.readouterr().out
        assert "MPI_" in out
        assert main(["predict", trace]) == 0
        out = capsys.readouterr().out
        assert "predicted time" in out

    def test_gzip_output(self, tmp_path):
        trace = str(tmp_path / "t.cyp.gz")
        assert main(
            ["trace", "ep", "-n", "4", "--scale", "0.5", "-o", trace, "--gzip"]
        ) == 0
        with open(trace, "rb") as fh:
            assert fh.read(2) == b"\x1f\x8b"


class TestCst:
    def test_cst_from_file(self, tmp_path, capsys):
        path = tmp_path / "prog.mpi"
        path.write_text(
            "func main() { for (var i = 0; i < 3; i = i + 1) { mpi_barrier(); } }"
        )
        assert main(["cst", str(path)]) == 0
        out = capsys.readouterr().out
        assert "loop" in out and "mpi_barrier" in out


class TestPatterns:
    def test_heatmap(self, capsys):
        assert main(["patterns", "leslie3d", "-n", "8", "--scale", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "message sizes" in out


class TestValidation:
    def test_bad_proc_count(self):
        with pytest.raises(ValueError):
            main(["trace", "bt", "-n", "7"])

    def test_unknown_workload(self):
        with pytest.raises(SystemExit):
            main(["trace", "nope", "-n", "4"])


class TestFaultFlags:
    def test_trace_strict_and_quarantine_out(self, tmp_path, capsys):
        trace = str(tmp_path / "t.cyp")
        qpath = str(tmp_path / "q.json")
        assert main([
            "trace", "ep", "-n", "4", "--scale", "0.5", "-o", trace,
            "--strict", "--quarantine-out", qpath,
        ]) == 0
        import json

        with open(qpath) as fh:
            report = json.load(fh)
        assert report["quarantined_ranks"] == 0

    def test_replay_salvage_of_truncated_trace(self, tmp_path, capsys):
        trace = str(tmp_path / "t.cyp")
        assert main(
            ["trace", "ep", "-n", "4", "--scale", "0.5", "-o", trace]
        ) == 0
        capsys.readouterr()
        data = open(trace, "rb").read()
        with open(trace, "wb") as fh:
            fh.write(data[:-6])
        from repro.cli import EXIT_CORRUPT_TRACE

        with pytest.raises(SystemExit) as excinfo:
            main(["replay", trace, "-r", "0"])
        assert excinfo.value.code == EXIT_CORRUPT_TRACE
        err = capsys.readouterr().err
        assert "--salvage" in err
        assert main(["replay", trace, "-r", "0", "--salvage"]) == 0
        err = capsys.readouterr().err
        assert "salvaged" in err

    def test_corrupt_trace_exit_codes_replay_and_query(
        self, tmp_path, capsys
    ):
        # Satellite: a corrupted trace without --salvage exits with the
        # *distinct* code 3 (not the generic 1, not argparse's 2) and a
        # one-line hint naming --salvage, for both replay and query.
        from repro.cli import EXIT_CORRUPT_TRACE

        trace = str(tmp_path / "t.cyp")
        assert main(
            ["trace", "ep", "-n", "4", "--scale", "0.5", "-o", trace]
        ) == 0
        capsys.readouterr()
        data = open(trace, "rb").read()
        bad = bytearray(data)
        bad[len(bad) // 2] ^= 0xFF  # mid-file bit damage
        with open(trace, "wb") as fh:
            fh.write(bytes(bad))
        for argv in (
            ["replay", trace, "-r", "0"],
            ["query", trace, "traffic"],
        ):
            with pytest.raises(SystemExit) as excinfo:
                main(argv)
            assert excinfo.value.code == EXIT_CORRUPT_TRACE
            err = capsys.readouterr().err
            assert "hint" in err and "--salvage" in err

    def test_query_salvage_flag_recovers(self, tmp_path, capsys):
        trace = str(tmp_path / "t.cyp")
        assert main(
            ["trace", "ep", "-n", "4", "--scale", "0.5", "-o", trace]
        ) == 0
        capsys.readouterr()
        data = open(trace, "rb").read()
        with open(trace, "wb") as fh:
            fh.write(data[:-6])
        assert main(["query", trace, "traffic", "--salvage"]) == 0

    def test_info_salvage_flag(self, tmp_path, capsys):
        trace = str(tmp_path / "t.cyp")
        assert main(
            ["trace", "ep", "-n", "4", "--scale", "0.5", "-o", trace]
        ) == 0
        assert main(["info", trace, "--salvage"]) == 0

    def test_verify_accepts_fault_flags(self, capsys):
        assert main([
            "verify", "ep", "-n", "4", "--scale", "0.5",
            "--retry", "1", "--task-timeout", "30",
        ]) == 0
        assert "OK" in capsys.readouterr().out


class TestFaultsmoke:
    def test_matrix_passes_and_writes_report(self, tmp_path, capsys):
        out = str(tmp_path / "report.json")
        assert main([
            "faultsmoke", "cg", "-n", "4", "--scale", "0.25",
            "--flips", "4", "-o", out,
        ]) == 0
        import json

        with open(out) as fh:
            report = json.load(fh)
        assert report["passed"] is True
        assert len(report["scenarios"]) == 6
        assert report["quarantine"]["quarantined_ranks"] == 2
        stdout = capsys.readouterr().out
        assert "PASSED" in stdout
