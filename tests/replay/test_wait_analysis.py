"""Wait-time / bottleneck analysis tests (SIM-MPI extension)."""

import sys

sys.path.insert(0, "tests")
from helpers import run_traced  # noqa: E402

from repro.core.decompress import decompress_rank  # noqa: E402
from repro.replay import predict  # noqa: E402

# Rank 0 computes 10x longer than everyone else; the others wait at the
# barrier — rank 0 is the bottleneck.
IMBALANCED = """
func main() {
  var rank = mpi_comm_rank();
  for (var i = 0; i < 5; i = i + 1) {
    if (rank == 0) { compute(5000); } else { compute(500); }
    mpi_barrier();
  }
}
"""


def sim_of(source, nprocs):
    # Imbalance analysis replays the *per-rank* CTTs: the merged job-wide
    # trace merges timing statistics across grouped ranks (the paper's
    # design trade-off), which would average the straggler away.
    _, rec, cyp, _ = run_traced(source, nprocs)
    traces = {r: decompress_rank(cyp.ctt(r)) for r in range(nprocs)}
    return predict(traces)


class TestWaitAnalysis:
    def test_straggler_identified_as_bottleneck(self):
        sim = sim_of(IMBALANCED, 6)
        assert sim.bottleneck_ranks(1) == [0]

    def test_waiters_have_high_wait_fraction(self):
        sim = sim_of(IMBALANCED, 6)
        assert sim.wait_fraction(0) < 0.05
        for rank in range(1, 6):
            assert sim.wait_fraction(rank) > 0.5

    def test_balanced_program_low_wait(self):
        balanced = IMBALANCED.replace("compute(5000)", "compute(500)")
        sim = sim_of(balanced, 4)
        for rank in range(4):
            assert sim.wait_fraction(rank) < 0.2

    def test_pipeline_wait_grows_downstream(self):
        # A relay chain: rank k waits on rank k-1's long computation.
        chain = """
        func main() {
          var rank = mpi_comm_rank();
          var size = mpi_comm_size();
          compute(100);
          if (rank > 0) { mpi_recv(rank - 1, 64, 0); }
          compute(2000);
          if (rank < size - 1) { mpi_send(rank + 1, 64, 0); }
        }
        """
        sim = sim_of(chain, 5)
        assert sim.wait_fraction(4) > sim.wait_fraction(1)
        assert sim.wait_fraction(0) == 0.0

    def test_wait_never_exceeds_total(self):
        sim = sim_of(IMBALANCED, 4)
        for rank in range(4):
            assert 0.0 <= sim.wait_fraction(rank) <= 1.0

    def test_cli_verify_command(self, capsys):
        from repro.cli import main

        assert main(["verify", "mg", "-n", "8", "--scale", "0.3"]) == 0
        assert "OK" in capsys.readouterr().out
