"""SIM-MPI replay engine tests."""

import sys

import pytest

sys.path.insert(0, "tests")
from helpers import run_traced  # noqa: E402

from repro.core.decompress import decompress_all  # noqa: E402
from repro.core.inter import merge_all  # noqa: E402
from repro.replay.loggp import LogGPParams  # noqa: E402
from repro.replay.simmpi import SimMPI, predict  # noqa: E402


def traces_of(source, nprocs, defines=None):
    _, rec, cyp, result = run_traced(source, nprocs, defines=defines)
    merged = merge_all([cyp.ctt(r) for r in range(nprocs)])
    return decompress_all(merged), result


class TestBasics:
    def test_compute_only(self):
        traces, measured = traces_of(
            "func main() { compute(1000); mpi_barrier(); }", 4
        )
        sim = predict(traces)
        assert sim.elapsed >= 1000

    def test_computation_gaps_drive_time(self):
        fast, _ = traces_of("func main() { compute(10); mpi_barrier(); }", 2)
        slow, _ = traces_of("func main() { compute(10000); mpi_barrier(); }", 2)
        assert predict(slow).elapsed > predict(fast).elapsed + 9000

    def test_send_recv_ordering(self):
        traces, _ = traces_of(
            """
            func main() {
              var rank = mpi_comm_rank();
              if (rank == 0) { compute(5000); mpi_send(1, 64, 0); }
              else { mpi_recv(0, 64, 0); }
            }
            """,
            2,
        )
        sim = SimMPI(traces).run()
        # rank 1 must wait for rank 0's late send
        assert sim.finish_times[1] > 5000

    def test_comm_fraction_sane(self):
        traces, _ = traces_of(
            """
            func main() {
              compute(100);
              for (var i = 0; i < 10; i = i + 1) { mpi_allreduce(1024); }
            }
            """,
            8,
        )
        sim = predict(traces)
        assert 0.0 < sim.comm_fraction() <= 1.0


class TestNonblocking:
    def test_waitall_pipeline(self):
        traces, _ = traces_of(
            """
            func main() {
              var peer = 1 - mpi_comm_rank();
              var r[2];
              for (var i = 0; i < 5; i = i + 1) {
                r[0] = mpi_irecv(peer, 4096, 0);
                r[1] = mpi_isend(peer, 4096, 0);
                mpi_waitall(r, 2);
                compute(50);
              }
            }
            """,
            2,
        )
        sim = predict(traces)
        # 4 of the 5 compute(50) gaps are observable (the one after the
        # final MPI event is invisible to any tracer).
        assert sim.elapsed > 200

    def test_wildcard_replayed_as_resolved_source(self):
        traces, _ = traces_of(
            """
            func main() {
              var rank = mpi_comm_rank();
              if (rank == 0) {
                var r = mpi_irecv(-1, 8, 0);
                mpi_wait(r);
              } else { mpi_send(0, 8, 0); }
            }
            """,
            2,
        )
        sim = predict(traces)  # must not deadlock
        assert sim.elapsed > 0

    def test_sendrecv(self):
        traces, _ = traces_of(
            """
            func main() {
              var peer = 1 - mpi_comm_rank();
              mpi_sendrecv(peer, 2048, 1, peer, 2048, 1);
            }
            """,
            2,
        )
        assert predict(traces).elapsed > 0


class TestPredictionAccuracy:
    JACOBI = """
    func main() {
      var rank = mpi_comm_rank();
      var size = mpi_comm_size();
      for (var k = 0; k < 30; k = k + 1) {
        if (rank < size - 1) { mpi_send(rank + 1, 8192, 1); }
        if (rank > 0) { mpi_recv(rank - 1, 8192, 1); }
        if (rank > 0) { mpi_send(rank - 1, 8192, 2); }
        if (rank < size - 1) { mpi_recv(rank + 1, 8192, 2); }
        compute(300);
      }
      mpi_allreduce(8);
    }
    """

    def test_prediction_within_twenty_percent(self):
        """The paper reports 5.9% average error; allow slack for the
        default (uncalibrated) parameters."""
        from repro.replay.calibrate import fit_loggp

        traces, result = traces_of(self.JACOBI, 8)
        params = fit_loggp(reps=3)
        sim = predict(traces, params)
        error = abs(sim.elapsed - result.elapsed) / result.elapsed
        assert error < 0.20, f"prediction error {error:.1%}"

    def test_prediction_scales_with_ranks(self):
        from repro.replay.calibrate import fit_loggp

        params = fit_loggp(reps=2)
        elapsed = {}
        for nprocs in (2, 8):
            traces, _ = traces_of(self.JACOBI, nprocs)
            elapsed[nprocs] = predict(traces, params).elapsed
        # The pipeline startup makes more ranks slower per step.
        assert elapsed[8] > elapsed[2]


class TestParams:
    def test_p2p_time_monotone(self):
        p = LogGPParams()
        assert p.p2p_time(10**6) > p.p2p_time(10)

    def test_empty_traces(self):
        sim = SimMPI({})
        result = sim.run()
        assert result.elapsed == 0.0
        assert result.comm_fraction() == 0.0
