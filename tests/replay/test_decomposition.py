"""Collective decomposition schedule tests."""

import pytest

from repro.replay.decomposition import (
    binomial_bcast_schedule,
    collective_cost,
    pairwise_alltoall_schedule,
    recursive_doubling_schedule,
)
from repro.replay.loggp import LogGPParams

P = LogGPParams()


class TestBcastSchedule:
    @pytest.mark.parametrize("nprocs", [2, 3, 4, 7, 8, 16, 33])
    def test_everyone_receives_exactly_once(self, nprocs):
        schedule = binomial_bcast_schedule(nprocs, root=0)
        received = {0}
        for round_pairs in schedule:
            for src, dst in round_pairs:
                assert src in received, "sender must already hold the data"
                assert dst not in received, "no duplicate delivery"
                received.add(dst)
        assert received == set(range(nprocs))

    @pytest.mark.parametrize("nprocs", [4, 8, 16])
    def test_log_rounds(self, nprocs):
        import math

        schedule = binomial_bcast_schedule(nprocs)
        assert len(schedule) == math.ceil(math.log2(nprocs))

    def test_nonzero_root_rotates(self):
        schedule = binomial_bcast_schedule(4, root=2)
        first_senders = {src for src, _ in schedule[0]}
        assert first_senders == {2}


class TestRecursiveDoubling:
    @pytest.mark.parametrize("nprocs", [2, 4, 8, 16])
    def test_each_round_perfect_matching(self, nprocs):
        for round_pairs in recursive_doubling_schedule(nprocs):
            seen = set()
            for a, b in round_pairs:
                assert a not in seen and b not in seen
                seen.update((a, b))
            assert seen == set(range(nprocs))


class TestAlltoall:
    @pytest.mark.parametrize("nprocs", [2, 3, 4, 8])
    def test_every_ordered_pair_communicates(self, nprocs):
        sent = set()
        for round_pairs in pairwise_alltoall_schedule(nprocs):
            for src, dst in round_pairs:
                sent.add((src, dst))
        expected = {
            (a, b) for a in range(nprocs) for b in range(nprocs) if a != b
        }
        assert sent == expected


class TestCosts:
    def test_barrier_cheapest(self):
        for op in ("MPI_Bcast", "MPI_Allreduce", "MPI_Alltoall"):
            assert collective_cost(P, op, 4096, 16) > collective_cost(
                P, "MPI_Barrier", 0, 16
            )

    def test_allreduce_double_reduce(self):
        assert collective_cost(P, "MPI_Allreduce", 1024, 8) == pytest.approx(
            2 * collective_cost(P, "MPI_Reduce", 1024, 8)
        )

    def test_alltoall_linear_in_ranks(self):
        c8 = collective_cost(P, "MPI_Alltoall", 64, 8)
        c64 = collective_cost(P, "MPI_Alltoall", 64, 64)
        assert c64 / c8 == pytest.approx(63 / 7)

    def test_unknown_op(self):
        with pytest.raises(ValueError):
            collective_cost(P, "MPI_Magic", 1, 4)
