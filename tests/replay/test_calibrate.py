"""LogGP calibration tests."""

from repro.mpisim.netmodel import NetworkModel
from repro.replay.calibrate import fit_loggp, measure_pingpong


class TestPingPong:
    def test_half_rtt_positive_and_monotone(self):
        t_small = measure_pingpong(64, reps=3)
        t_big = measure_pingpong(1 << 20, reps=3)
        assert 0 < t_small < t_big

    def test_custom_network(self):
        slow = NetworkModel(latency=50.0)
        fast = NetworkModel(latency=0.5)
        assert measure_pingpong(64, reps=2, network=slow) > measure_pingpong(
            64, reps=2, network=fast
        )


class TestFit:
    def test_fitted_params_sane(self):
        params = fit_loggp(reps=2)
        assert params.L > 0
        assert params.o > 0
        assert params.G > 0

    def test_fit_tracks_bandwidth(self):
        model = NetworkModel()
        params = fit_loggp(reps=2)
        # The fitted G should land between the machine's two per-byte rates.
        assert model.gap_large * 0.5 < params.G < model.gap_small * 2

    def test_fit_predicts_pingpong(self):
        params = fit_loggp(reps=2)
        for nbytes in (1024, 65536, 1 << 20):
            measured = measure_pingpong(nbytes, reps=2)
            predicted = params.p2p_time(nbytes)
            assert abs(predicted - measured) / measured < 0.5
