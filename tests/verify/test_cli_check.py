"""CLI surface of the integrity suite: ``repro check`` and the
``--selfcheck`` flags on ``trace``/``verify``."""

import json
import sys

sys.path.insert(0, "tests")

from repro.cli import main  # noqa: E402


class TestCheckCommand:
    def test_single_workload_passes(self, capsys):
        assert main(["check", "cg", "--scale", "0.3"]) == 0
        out = capsys.readouterr().out
        assert "0 violation(s)" in out and "PASSED" in out

    def test_wildcard_findings_are_informational(self, capsys):
        # The farm is nondeterministic by design; the audit reports it
        # but the exit code stays 0 — findings are not violations.
        assert main(["check", "farm", "--scale", "0.3"]) == 0
        out = capsys.readouterr().out
        assert "wildcard finding" in out

    def test_json_report_with_matrix(self, tmp_path, capsys):
        out_path = tmp_path / "check.json"
        rc = main([
            "check", "cg", "--scale", "0.3", "--fault-matrix",
            "--differential", "-o", str(out_path),
        ])
        assert rc == 0
        report = json.loads(out_path.read_text())
        assert report["ok"] is True
        (entry,) = report["workloads"]
        assert entry["workload"] == "cg"
        assert entry["violations"] == []
        assert entry["fault_matrix"]["ok"] is True
        assert entry["differential"]["ok"] is True
        capsys.readouterr()

    def test_bad_schedule_is_rejected(self, capsys):
        assert main(["check", "cg", "--schedules", "fold,bogus"]) == 2
        assert "bogus" in capsys.readouterr().err


class TestSelfcheckFlags:
    def test_trace_selfcheck(self, tmp_path, capsys):
        rc = main([
            "trace", "cg", "-n", "4", "--scale", "0.3",
            "--selfcheck", "-o", str(tmp_path / "t.cyp"),
        ])
        assert rc == 0
        assert "selfcheck: trace invariants OK" in capsys.readouterr().out

    def test_verify_selfcheck(self, capsys):
        rc = main(["verify", "cg", "-n", "4", "--scale", "0.3",
                   "--selfcheck"])
        assert rc == 0
        assert "selfcheck: trace invariants OK" in capsys.readouterr().out

    def test_check_publishes_metrics(self, capsys):
        assert main(["check", "cg", "--scale", "0.3", "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "verify.checks" in out
