"""Structural invariant checkers: clean on healthy traces, loud on
hand-corrupted ones (docs/INTERNALS.md §8)."""

import sys

sys.path.insert(0, "tests")
from helpers import run_traced  # noqa: E402

from repro import obs  # noqa: E402
from repro.core.inter import merge_all  # noqa: E402
from repro.core.ranks import REL  # noqa: E402
from repro.core.sequences import IntSequence  # noqa: E402
from repro.static.cst import CALL  # noqa: E402
from repro.verify import (  # noqa: E402
    check_cst,
    check_ctt,
    check_merged,
    publish_verify_metrics,
)

RING = """
func main() {
  for (var i = 0; i < 4; i = i + 1) {
    if (mpi_comm_rank() < mpi_comm_size() - 1) {
      mpi_send(mpi_comm_rank() + 1, 64, 7);
    }
    if (mpi_comm_rank() > 0) {
      mpi_recv(mpi_comm_rank() - 1, 64, 7);
    }
  }
  mpi_barrier();
}
"""

NPROCS = 4


def _codes(violations):
    return {v.code for v in violations}


def _rel_leaf(ctt, op="MPI_Send"):
    for vertex in ctt.vertices():
        for record in vertex.records or []:
            if record.key is not None and record.key[0] == op:
                if record.key[1][0] == REL:
                    return vertex, record
    raise AssertionError(f"no REL {op} record")


class TestHealthy:
    def test_ring_is_clean_everywhere(self):
        compiled, _rec, comp, _res = run_traced(RING, NPROCS)
        assert check_cst(compiled.cst) == []
        ctts = [comp.ctt(r) for r in range(NPROCS)]
        for ctt in ctts:
            assert check_ctt(ctt, nranks=NPROCS) == []
        merged = merge_all(ctts, nranks=NPROCS)
        assert check_merged(merged, nranks=NPROCS) == []


class TestCST:
    def test_duplicate_gid(self):
        compiled, *_ = run_traced(RING, NPROCS)
        nodes = [n for n, _p in compiled.cst.preorder_with_parent()]
        nodes[-1].gid = nodes[1].gid
        codes = _codes(check_cst(compiled.cst))
        assert "gid-duplicate" in codes
        assert "gid-not-preorder" in codes

    def test_call_with_children(self):
        compiled, *_ = run_traced(RING, NPROCS)
        nodes = [n for n, _p in compiled.cst.preorder_with_parent()]
        leaf = next(n for n in nodes if n.kind == CALL)
        other = next(n for n in nodes if n.kind == CALL and n is not leaf)
        leaf.children.append(other)
        try:
            codes = _codes(check_cst(compiled.cst))
        finally:
            leaf.children.clear()
        assert "call-with-children" in codes

    def test_bad_branch_path(self):
        compiled, *_ = run_traced(RING, NPROCS)
        branch = next(
            n for n, _p in compiled.cst.preorder_with_parent()
            if n.branch_path is not None
        )
        branch.branch_path = 3
        assert "branch-bad-path" in _codes(check_cst(compiled.cst))


class TestCTT:
    def test_out_of_range_rel_peer(self):
        _c, _r, comp, _res = run_traced(RING, NPROCS)
        ctt = comp.ctt(0)
        _vertex, record = _rel_leaf(ctt)
        key = list(record.key)
        key[1] = (REL, NPROCS + 3)
        record.key = tuple(key)
        violations = check_ctt(ctt, nranks=NPROCS)
        assert "peer-range" in _codes(violations)
        # Without nranks the delta cannot be range-checked upward, and
        # a positive delta from rank 0 never goes negative: lenient.
        assert "peer-range" not in _codes(check_ctt(ctt))

    def test_occurrence_overlap(self):
        _c, _r, comp, _res = run_traced(RING, NPROCS)
        ctt = comp.ctt(1)
        _vertex, record = _rel_leaf(ctt, op="MPI_Recv")
        values = record.occurrences.to_list()
        assert len(values) >= 2
        values[-1] = values[0]
        record.occurrences = IntSequence.from_values(sorted(values))
        codes = _codes(check_ctt(ctt, nranks=NPROCS))
        assert codes & {"occ-overlap", "occ-regress", "occ-count"}

    def test_occurrence_hole(self):
        _c, _r, comp, _res = run_traced(RING, NPROCS)
        ctt = comp.ctt(1)
        _vertex, record = _rel_leaf(ctt, op="MPI_Recv")
        values = record.occurrences.to_list()
        record.occurrences = IntSequence.from_values(values[1:])
        assert "occ-count" in _codes(check_ctt(ctt, nranks=NPROCS))

    def test_loop_arity_breaks_when_count_dropped(self):
        _c, _r, comp, _res = run_traced(RING, NPROCS)
        ctt = comp.ctt(0)
        loop = next(
            v for v in ctt.vertices()
            if v.loop_counts is not None and len(v.loop_counts)
        )
        values = loop.loop_counts.to_list()
        values[-1] = -2
        loop.loop_counts = IntSequence.from_values(values)
        codes = _codes(check_ctt(ctt, nranks=NPROCS))
        assert "loop-negative" in codes


# Rank-dependent message sizes force distinct record signatures, so the
# send leaf merges into one group per rank — multi-group territory.
VARIED = """
func main() {
  if (mpi_comm_rank() > 0) {
    mpi_send(0, mpi_comm_rank() * 64, 7);
  } else {
    for (var i = 1; i < mpi_comm_size(); i = i + 1) {
      mpi_recv(i, i * 64, 7);
    }
  }
  mpi_barrier();
}
"""


class TestMergedDirect:
    def test_rank_overlap_detected(self):
        _c, _r, comp, _res = run_traced(VARIED, NPROCS)
        merged = merge_all(
            [comp.ctt(r) for r in range(NPROCS)], nranks=NPROCS
        )
        assert check_merged(merged, nranks=NPROCS) == []
        vertex = next(v for v in merged.vertices() if len(v.groups) >= 2)
        groups = vertex.sorted_groups()
        groups[1].ranks = sorted(set(groups[1].ranks) | {groups[0].ranks[0]})
        groups[1]._rank_seq = None
        vertex._by_rank = None
        assert "rank-overlap" in _codes(check_merged(merged, nranks=NPROCS))

    def test_violation_to_dict_roundtrips(self):
        _c, _r, comp, _res = run_traced(RING, NPROCS)
        ctt = comp.ctt(0)
        _vertex, record = _rel_leaf(ctt)
        key = list(record.key)
        key[1] = (REL, NPROCS + 3)
        record.key = tuple(key)
        (v, *_rest) = check_ctt(ctt, nranks=NPROCS)
        d = v.to_dict()
        assert d["code"] == "peer-range"
        assert d["rank"] == 0
        assert d["gid"] == v.gid >= 0


class TestMetrics:
    def test_counters_published_only_when_nonzero(self):
        registry = obs.enable()
        try:
            publish_verify_metrics(
                registry, checks=3, violations=0, findings=2
            )
        finally:
            obs.disable()
        assert registry.counters["verify.checks"] == 3
        assert registry.counters["verify.wildcard_findings"] == 2
        assert "verify.violations" not in registry.counters

    def test_none_registry_is_a_noop(self):
        publish_verify_metrics(None, checks=1, violations=1, findings=1)
