"""Wildcard nondeterminism audit: flags the task farm, passes
deterministic workloads, ignores wildcard-free traces."""

import sys

sys.path.insert(0, "tests")
from helpers import run_traced  # noqa: E402

from repro.core.inter import merge_all  # noqa: E402
from repro.verify import audit_wildcards  # noqa: E402
from repro.workloads import WORKLOADS  # noqa: E402


def _merged(workload, nprocs, scale=0.3):
    w = WORKLOADS[workload]
    w.check_procs(nprocs)
    _c, _r, comp, _res = run_traced(
        w.source, nprocs, defines=w.defines(nprocs, scale)
    )
    return merge_all(
        [comp.ctt(r) for r in range(nprocs)], nranks=nprocs
    )


class TestAudit:
    def test_farm_is_flagged_nondeterministic(self):
        audit = audit_wildcards(_merged("farm", 4))
        assert audit.wildcard_records > 0
        assert not audit.deterministic
        assert any(
            f.kind in ("iteration-order", "cross-group")
            for f in audit.findings
        )
        # Findings carry a locatable vertex and render to one line.
        f = audit.findings[0]
        assert f.gid >= 0 and "gid=" in f.format()

    def test_dt_wildcards_are_deterministic(self):
        # npb_dt gathers with ANY_SOURCE but every rank resolves the
        # same relative pattern in blocked order: wildcards, no finding.
        audit = audit_wildcards(_merged("dt", 5))
        assert audit.wildcard_records > 0
        assert audit.deterministic

    def test_wildcard_free_trace_is_empty(self):
        audit = audit_wildcards(_merged("cg", 4))
        assert audit.wildcard_leaves == 0
        assert audit.wildcard_records == 0
        assert audit.deterministic

    def test_to_dict_schema(self):
        d = audit_wildcards(_merged("farm", 4)).to_dict()
        assert d["deterministic"] is False
        assert d["wildcard_records"] > 0
        assert all(isinstance(line, str) for line in d["findings"])
