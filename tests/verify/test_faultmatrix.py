"""Seeded fault matrix: every corruption kind must be *detected* — the
negative proof that the checkers are not vacuously green."""

import sys

sys.path.insert(0, "tests")
from helpers import run_traced  # noqa: E402

import pytest  # noqa: E402

from repro.core.inter import merge_all  # noqa: E402
from repro.faults import PAYLOAD_KINDS, FaultPlan, corrupt_merged  # noqa: E402
from repro.verify import check_merged  # noqa: E402
from repro.verify.faultmatrix import (  # noqa: E402
    EXPECTED_CODES,
    run_fault_matrix,
)
from repro.workloads import WORKLOADS  # noqa: E402

NPROCS = 4


@pytest.fixture(scope="module")
def matrix():
    w = WORKLOADS["cg"]
    return run_fault_matrix(
        w.source, NPROCS, w.defines(NPROCS, 0.3), workload="cg"
    )


class TestMatrix:
    def test_every_kind_detected(self, matrix):
        missed = [e.kind for e in matrix.entries if not e.detected]
        assert matrix.ok, f"undetected corruption kinds: {missed}"
        # cg's trace shape has a site for every kind: nothing skipped.
        assert not any(e.skipped for e in matrix.entries)
        kinds = {e.kind for e in matrix.entries}
        assert set(PAYLOAD_KINDS) <= kinds
        assert {k for k in kinds if k.startswith("stream:")}

    def test_inapplicable_kind_skips_not_fails(self):
        # dt at n=5 is too small for a multi-occurrence record:
        # occ-overlap has no site, which must not fail the matrix.
        w = WORKLOADS["dt"]
        report = run_fault_matrix(
            w.source, 5, w.defines(5, 0.3), workload="dt"
        )
        assert report.ok
        skipped = [e for e in report.entries if e.skipped]
        assert skipped and not any(e.detected for e in skipped)

    def test_payload_entries_carry_namesake_codes(self, matrix):
        for entry in matrix.entries:
            if entry.kind in EXPECTED_CODES:
                assert EXPECTED_CODES[entry.kind] & set(entry.codes), entry

    def test_report_serializes(self, matrix):
        d = matrix.to_dict()
        assert d["ok"] is True
        assert len(d["entries"]) == len(PAYLOAD_KINDS) + 3

    def test_same_seed_is_reproducible(self, matrix):
        w = WORKLOADS["cg"]
        again = run_fault_matrix(
            w.source, NPROCS, w.defines(NPROCS, 0.3), workload="cg"
        )
        assert [e.description for e in again.entries] == [
            e.description for e in matrix.entries
        ]


class TestCorruptMerged:
    def test_each_kind_trips_its_invariant(self):
        w = WORKLOADS["cg"]
        _c, _r, comp, _res = run_traced(
            w.source, NPROCS, defines=w.defines(NPROCS, 0.3)
        )
        ctts = [comp.ctt(r) for r in range(NPROCS)]
        plan = FaultPlan(seed=7)
        for kind in PAYLOAD_KINDS:
            merged = merge_all(ctts, nranks=NPROCS)
            assert check_merged(merged, nranks=NPROCS) == []
            corrupt_merged(merged, kind, plan.rng("t", kind), nranks=NPROCS)
            codes = {v.code for v in check_merged(merged, nranks=NPROCS)}
            assert codes & EXPECTED_CODES[kind], (kind, codes)

    def test_unknown_kind_raises(self):
        w = WORKLOADS["cg"]
        _c, _r, comp, _res = run_traced(
            w.source, NPROCS, defines=w.defines(NPROCS, 0.3)
        )
        merged = merge_all(
            [comp.ctt(r) for r in range(NPROCS)], nranks=NPROCS
        )
        with pytest.raises(ValueError, match="unknown"):
            corrupt_merged(merged, "no-such-kind", FaultPlan(seed=1).rng("x"))
