"""Differential harness: every variant agrees on healthy workloads, and
divergences localize to the first differing event."""

import sys

sys.path.insert(0, "tests")

from repro.verify import differential_check  # noqa: E402
from repro.verify.differential import first_divergence  # noqa: E402
from repro.workloads import WORKLOADS  # noqa: E402


class TestFirstDivergence:
    def test_equal_sequences_return_none(self):
        assert first_divergence("a", "b", 0, [(1,), (2,)], [(1,), (2,)]) is None

    def test_mismatch_localizes_index(self):
        div = first_divergence("a", "truth", 3, [(1,), (9,)], [(1,), (2,)])
        assert (div.rank, div.index) == (3, 1)
        assert div.left_event == (9,) and div.right_event == (2,)
        assert "rank 3" in div.format()

    def test_length_mismatch_reports_missing_side(self):
        div = first_divergence("a", "b", 0, [(1,)], [(1,), (2,)])
        assert div.index == 1
        assert div.left_event is None and div.right_event == (2,)


class TestDifferentialCheck:
    def test_cg_all_variants_agree(self):
        w = WORKLOADS["cg"]
        report = differential_check(
            w.source, 4, w.defines(4, 0.3), workload="cg"
        )
        assert report.ok, [d.format() for d in report.divergences]
        assert report.events > 0
        assert sorted(report.variants) == [
            "budgeted", "fastpath", "inline", "packed", "packed_runs",
            "packed_runs_live", "parallel", "parallel_shm", "reference",
        ]
        assert report.schedules == ["fold", "tree", "parallel"]
        d = report.to_dict()
        assert d["ok"] is True and d["divergences"] == []

    def test_wildcard_workload_agrees_too(self):
        # The farm's wildcard records stress the pending-resolution
        # paths in every compression variant.
        w = WORKLOADS["farm"]
        report = differential_check(
            w.source, 4, w.defines(4, 0.3), workload="farm",
            schedules=("fold", "tree"),
        )
        assert report.ok, [d.format() for d in report.divergences]
