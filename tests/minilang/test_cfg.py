"""CFG construction tests."""

import pytest

from repro.minilang.cfg import build_cfg
from repro.minilang.parser import parse


def cfg_of(body: str, extra: str = ""):
    program = parse(f"func main() {{ {body} }} {extra}")
    return build_cfg(program.functions["main"])


def block_kinds(cfg):
    return {b.kind for b in cfg.blocks.values()}


class TestStraightLine:
    def test_entry_reaches_exit(self):
        cfg = cfg_of("var x = 1; x = x + 1;")
        order = cfg.postorder()
        assert cfg.entry in order and cfg.exit in order

    def test_invocations_in_order(self):
        cfg = cfg_of("a(); b(); c();")
        names = [
            inv.name
            for bid in cfg.reverse_postorder()
            for inv in cfg.blocks[bid].invocations
        ]
        assert names == ["a", "b", "c"]

    def test_nested_call_evaluation_order(self):
        cfg = cfg_of("x = outer(inner(1), 2);")
        names = [
            inv.name
            for bid in cfg.reverse_postorder()
            for inv in cfg.blocks[bid].invocations
        ]
        assert names == ["inner", "outer"]


class TestBranches:
    def test_if_produces_branch_block(self):
        cfg = cfg_of("if (x) { a(); }")
        branches = [b for b in cfg.blocks.values() if b.kind == "branch"]
        assert len(branches) == 1
        assert len(branches[0].succs) == 2

    def test_branch_tagged_with_ast_node(self):
        cfg = cfg_of("if (x) { a(); }")
        (branch,) = [b for b in cfg.blocks.values() if b.kind == "branch"]
        assert branch.ast_id is not None

    def test_if_else_both_paths_reach_join(self):
        cfg = cfg_of("if (x) { a(); } else { b(); } c();")
        (branch,) = [b for b in cfg.blocks.values() if b.kind == "branch"]
        joins = [b for b in cfg.blocks.values() if b.kind == "join"]
        assert joins
        # Both successors eventually reach a join with 2 preds.
        join = [j for j in joins if len(j.preds) == 2]
        assert join


class TestLoops:
    def test_for_loop_has_header_with_back_edge(self):
        cfg = cfg_of("for (var i = 0; i < 3; i = i + 1) { a(); }")
        headers = [b for b in cfg.blocks.values() if b.kind == "loop_header"]
        assert len(headers) == 1
        header = headers[0]
        latches = [p for p in header.preds if cfg.blocks[p].kind == "latch"]
        assert latches, "loop header must have a latch predecessor"

    def test_while_loop(self):
        cfg = cfg_of("while (x) { a(); }")
        assert "loop_header" in block_kinds(cfg)

    def test_for_step_in_latch(self):
        cfg = cfg_of("for (var i = 0; i < 3; i = i + 1) { a(f()); }")
        # step has no calls; the latch exists and targets the header
        headers = [b for b in cfg.blocks.values() if b.kind == "loop_header"]
        latch = [b for b in cfg.blocks.values() if b.kind == "latch"][0]
        assert headers[0].bid in latch.succs

    def test_condition_calls_live_in_header(self):
        cfg = cfg_of("while (check()) { a(); }")
        (header,) = [b for b in cfg.blocks.values() if b.kind == "loop_header"]
        assert [i.name for i in header.invocations] == ["check"]

    def test_nested_loops_two_headers(self):
        cfg = cfg_of(
            "for (var i = 0; i < 2; i = i + 1) { while (x) { a(); } }"
        )
        headers = [b for b in cfg.blocks.values() if b.kind == "loop_header"]
        assert len(headers) == 2


class TestEarlyExits:
    def test_break_edges_to_loop_exit(self):
        cfg = cfg_of("while (1) { if (x) { break; } a(); } b();")
        assert "loop_header" in block_kinds(cfg)
        # b() must be reachable
        names = [
            inv.name
            for bid in cfg.postorder()
            for inv in cfg.blocks[bid].invocations
        ]
        assert "b" in names

    def test_continue_edges_to_latch(self):
        cfg = cfg_of("for (var i = 0; i < 3; i = i + 1) { if (x) { continue; } a(); }")
        assert "latch" in block_kinds(cfg)

    def test_return_edges_to_exit(self):
        cfg = cfg_of("if (x) { return; } a();")
        exit_block = cfg.blocks[cfg.exit]
        assert len(exit_block.preds) >= 2

    def test_break_outside_loop_rejected(self):
        with pytest.raises(ValueError):
            cfg_of("break;")

    def test_continue_outside_loop_rejected(self):
        with pytest.raises(ValueError):
            cfg_of("continue;")

    def test_unreachable_code_after_return(self):
        # no crash; trailing code is simply unreachable
        cfg = cfg_of("return; a();")
        assert cfg.exit in cfg.postorder()


class TestPostorder:
    def test_postorder_visits_reachable_once(self):
        cfg = cfg_of("if (x) { a(); } else { b(); } for (;x;) { c(); }")
        order = cfg.postorder()
        assert len(order) == len(set(order))

    def test_reverse_postorder_starts_at_entry(self):
        cfg = cfg_of("a();")
        assert cfg.reverse_postorder()[0] == cfg.entry
