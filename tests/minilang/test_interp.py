"""Interpreter semantics tests (no MPI: single rank, compute/print only)."""

import pytest

from repro.driver import run_compiled
from repro.minilang.interp import Interpreter, InterpError
from repro.mpisim.runtime import Runtime
from repro.static.instrument import compile_minimpi


def run_main(body: str, extra: str = "", defines=None, nprocs: int = 1):
    """Run a program and return its print() output lines."""
    source = f"func main() {{ {body} }} {extra}"
    compiled = compile_minimpi(source, cypress=False)
    output: list[str] = []
    runtime = Runtime(nprocs)

    def rank_main(comm):
        interp = Interpreter(
            compiled.program, comm, defines=defines, output=output,
            max_steps=200_000,
        )
        return interp.run()

    runtime.run(rank_main)
    return output


class TestArithmetic:
    def test_basic_ops(self):
        assert run_main("print(2 + 3 * 4 - 1);") == ["13"]

    def test_division_truncates_toward_zero(self):
        assert run_main("print(7 / 2); print(-7 / 2);") == ["3", "-3"]

    def test_modulo_c_semantics(self):
        assert run_main("print(7 % 3); print(-7 % 3);") == ["1", "-1"]

    def test_division_by_zero(self):
        with pytest.raises(InterpError):
            run_main("print(1 / 0);")

    def test_modulo_by_zero(self):
        with pytest.raises(InterpError):
            run_main("print(1 % 0);")

    def test_comparisons_yield_int(self):
        assert run_main("print(3 < 5); print(5 < 3); print(3 == 3);") == ["1", "0", "1"]

    def test_logical_ops(self):
        assert run_main("print(1 && 0); print(1 || 0); print(!1); print(!0);") == [
            "0", "1", "0", "1",
        ]

    def test_unary_minus(self):
        assert run_main("var x = 5; print(-x);") == ["-5"]


class TestVariables:
    def test_default_zero(self):
        assert run_main("var x; print(x);") == ["0"]

    def test_undefined_variable(self):
        with pytest.raises(InterpError):
            run_main("print(nope);")

    def test_defines_visible(self):
        assert run_main("print(n * 2);", defines={"n": 21}) == ["42"]

    def test_local_shadows_define(self):
        assert run_main("var n = 1; print(n);", defines={"n": 9}) == ["1"]


class TestArrays:
    def test_array_init_zero(self):
        assert run_main("var a[3]; print(a[0] + a[1] + a[2]);") == ["0"]

    def test_array_store_load(self):
        assert run_main("var a[4]; a[2] = 7; print(a[2]);") == ["7"]

    def test_array_out_of_bounds_read(self):
        with pytest.raises(InterpError):
            run_main("var a[2]; print(a[2]);")

    def test_array_out_of_bounds_write(self):
        with pytest.raises(InterpError):
            run_main("var a[2]; a[5] = 1;")

    def test_negative_index(self):
        with pytest.raises(InterpError):
            run_main("var a[2]; print(a[0 - 1]);")

    def test_array_passed_by_reference(self):
        out = run_main(
            "var a[2]; fill(a); print(a[0]);",
            extra="func fill(arr) { arr[0] = 42; }",
        )
        assert out == ["42"]

    def test_indexing_non_array(self):
        with pytest.raises(InterpError):
            run_main("var x = 1; print(x[0]);")


class TestControlFlow:
    def test_if_else(self):
        assert run_main("if (1) { print(1); } else { print(2); }") == ["1"]
        assert run_main("if (0) { print(1); } else { print(2); }") == ["2"]

    def test_for_loop(self):
        assert run_main(
            "var s = 0; for (var i = 0; i < 5; i = i + 1) { s = s + i; } print(s);"
        ) == ["10"]

    def test_while_loop(self):
        assert run_main(
            "var x = 8; while (x > 1) { x = x / 2; } print(x);"
        ) == ["1"]

    def test_zero_iteration_loop(self):
        assert run_main(
            "for (var i = 0; i < 0; i = i + 1) { print(i); } print(99);"
        ) == ["99"]

    def test_break(self):
        assert run_main(
            "for (var i = 0; i < 10; i = i + 1) { if (i == 3) { break; } } print(1);"
        ) == ["1"]

    def test_continue(self):
        assert run_main(
            "var s = 0; for (var i = 0; i < 5; i = i + 1) "
            "{ if (i % 2 == 0) { continue; } s = s + i; } print(s);"
        ) == ["4"]

    def test_nested_loop_totals(self):
        assert run_main(
            "var s = 0;"
            "for (var i = 0; i < 3; i = i + 1) {"
            "  for (var j = 0; j <= i; j = j + 1) { s = s + 1; }"
            "} print(s);"
        ) == ["6"]


class TestFunctions:
    def test_return_value(self):
        assert run_main(
            "print(add(2, 3));", extra="func add(a, b) { return a + b; }"
        ) == ["5"]

    def test_default_return_zero(self):
        assert run_main("print(f());", extra="func f() { var x = 1; }") == ["0"]

    def test_recursion(self):
        assert run_main(
            "print(fib(10));",
            extra="func fib(n) { if (n < 2) { return n; } "
            "return fib(n - 1) + fib(n - 2); }",
        ) == ["55"]

    def test_wrong_arity(self):
        with pytest.raises(InterpError):
            run_main("f(1);", extra="func f(a, b) { }")

    def test_unknown_function(self):
        with pytest.raises(InterpError):
            run_main("mystery();")

    def test_call_depth_limit(self):
        with pytest.raises(InterpError):
            run_main("f();", extra="func f() { f(); }")


class TestBuiltins:
    def test_min_max_abs(self):
        assert run_main("print(min(3, 5), max(3, 5), abs(0 - 4));") == ["3 5 4"]

    def test_ilog2_pow2(self):
        assert run_main("print(ilog2(1), ilog2(8), ilog2(9), pow2(5));") == ["0 3 3 32"]

    def test_isqrt(self):
        assert run_main("print(isqrt(0), isqrt(16), isqrt(17));") == ["0 4 4"]

    def test_ilog2_of_zero(self):
        with pytest.raises(InterpError):
            run_main("print(ilog2(0));")

    def test_compute_advances_clock(self):
        source = "func main() { compute(1000); }"
        compiled = compile_minimpi(source, cypress=False)
        runtime = Runtime(1)
        result = run_compiled(compiled, 1)
        assert result.elapsed >= 1000

    def test_compute_negative_rejected(self):
        with pytest.raises(InterpError):
            run_main("compute(0 - 5);")

    def test_mpi_queries(self):
        assert run_main("print(mpi_comm_rank(), mpi_comm_size());", nprocs=1) == [
            "0 1"
        ]


class TestStepLimit:
    def test_runaway_loop_caught(self):
        with pytest.raises(InterpError):
            run_main("while (1) { var x = 1; }")
