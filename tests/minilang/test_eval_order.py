"""Evaluation-order and fast-path (pure vs generator) interpreter tests."""

from repro.driver import run_compiled
from repro.minilang.interp import Interpreter
from repro.mpisim.runtime import Runtime
from repro.static.instrument import compile_minimpi


def run_main(body: str, extra: str = ""):
    source = f"func main() {{ {body} }} {extra}"
    compiled = compile_minimpi(source, cypress=False)
    output: list[str] = []
    runtime = Runtime(1)

    def rank_main(comm):
        return Interpreter(
            compiled.program, comm, output=output, max_steps=100_000
        ).run()

    runtime.run(rank_main)
    return output


class TestEvaluationOrder:
    def test_call_args_left_to_right(self):
        out = run_main(
            "f(mark(1), mark(2), mark(3));",
            extra="func mark(n) { print(n); return n; } func f(a, b, c) { }",
        )
        assert out == ["1", "2", "3"]

    def test_binary_left_before_right(self):
        out = run_main(
            "var x = mark(1) + mark(2);",
            extra="func mark(n) { print(n); return n; }",
        )
        assert out == ["1", "2"]

    def test_nested_call_innermost_first(self):
        out = run_main(
            "var x = outer(inner());",
            extra="func inner() { print(1); return 1; } "
            "func outer(a) { print(2); return a; }",
        )
        assert out == ["1", "2"]

    def test_call_in_array_index(self):
        out = run_main(
            "var a[3]; a[idx()] = 7; print(a[1]);",
            extra="func idx() { return 1; }",
        )
        assert out == ["7"]

    def test_call_in_index_read(self):
        out = run_main(
            "var a[3]; a[2] = 9; print(a[idx()]);",
            extra="func idx() { return 2; }",
        )
        assert out == ["9"]

    def test_assign_value_evaluated_before_index(self):
        # value then index, per the interpreter's documented order
        out = run_main(
            "var a[3]; a[mark(1)] = mark(0) + 5;",
            extra="func mark(n) { print(n); return n; }",
        )
        assert out == ["0", "1"]

    def test_nonshortcircuit_and(self):
        # Both operands evaluate even when the left is false.
        out = run_main(
            "var x = mark(0) && mark(1); print(x);",
            extra="func mark(n) { print(n); return n; }",
        )
        assert out == ["0", "1", "0"]

    def test_nonshortcircuit_or(self):
        out = run_main(
            "var x = mark(1) || mark(0); print(x);",
            extra="func mark(n) { print(n); return n; }",
        )
        assert out == ["1", "0", "1"]


class TestFastPathEquivalence:
    def test_pure_and_call_mixed_expression(self):
        # (pure) + (call) exercises both evaluation paths in one tree.
        out = run_main(
            "var y = 10; print(y * 2 + f());",
            extra="func f() { return 5; }",
        )
        assert out == ["25"]

    def test_pure_condition_in_loop_with_calls_in_body(self):
        out = run_main(
            "var s = 0; for (var i = 0; i < 3; i = i + 1) { s = s + f(i); } print(s);",
            extra="func f(n) { return n * n; }",
        )
        assert out == ["5"]

    def test_call_in_loop_condition_still_works(self):
        # Legal when the program is compiled without CYPRESS.
        out = run_main(
            "var n = 0; while (n < limit()) { n = n + 1; } print(n);",
            extra="func limit() { return 4; }",
        )
        assert out == ["4"]

    def test_deeply_nested_pure_expression(self):
        expr = "1" + " + 1" * 200
        out = run_main(f"print({expr});")
        assert out == ["201"]
