"""Parser unit tests."""

import pytest

from repro.minilang import ast_nodes as A
from repro.minilang.parser import ParseError, parse


def parse_main_body(body_src: str):
    return parse("func main() { " + body_src + " }").functions["main"].body


class TestTopLevel:
    def test_empty_program(self):
        program = parse("")
        assert program.functions == {}

    def test_function_with_params(self):
        program = parse("func f(a, b, c) { }")
        assert program.functions["f"].params == ["a", "b", "c"]

    def test_multiple_functions(self):
        program = parse("func a() {} func b() {}")
        assert list(program.functions) == ["a", "b"]

    def test_duplicate_function_rejected(self):
        with pytest.raises(ParseError):
            parse("func a() {} func a() {}")

    def test_program_function_lookup_error(self):
        with pytest.raises(KeyError):
            parse("func a() {}").function("missing")


class TestStatements:
    def test_var_decl_default(self):
        (stmt,) = parse_main_body("var x;")
        assert isinstance(stmt, A.VarDecl) and stmt.init is None and stmt.size is None

    def test_var_decl_init(self):
        (stmt,) = parse_main_body("var x = 1 + 2;")
        assert isinstance(stmt.init, A.Binary)

    def test_array_decl(self):
        (stmt,) = parse_main_body("var a[10];")
        assert isinstance(stmt.size, A.IntLit)

    def test_assignment(self):
        (stmt,) = parse_main_body("x = 3;")
        assert isinstance(stmt, A.Assign) and stmt.index is None

    def test_indexed_assignment(self):
        (stmt,) = parse_main_body("a[i + 1] = 3;")
        assert isinstance(stmt, A.Assign) and isinstance(stmt.index, A.Binary)

    def test_index_read_is_not_assignment(self):
        (stmt,) = parse_main_body("x = a[0] + 1;")
        assert isinstance(stmt, A.Assign)
        assert isinstance(stmt.value, A.Binary)

    def test_expression_statement(self):
        (stmt,) = parse_main_body("foo(1, 2);")
        assert isinstance(stmt, A.ExprStmt) and isinstance(stmt.expr, A.Call)

    def test_indexed_expression_statement(self):
        # `a[0];` — an index expression used as a statement (not assignment)
        (stmt,) = parse_main_body("a[0];")
        assert isinstance(stmt, A.ExprStmt) and isinstance(stmt.expr, A.Index)

    def test_return_with_and_without_value(self):
        a, b = parse_main_body("return; return 5;")
        assert a.value is None and isinstance(b.value, A.IntLit)

    def test_break_continue(self):
        a, b = parse_main_body("break; continue;")
        assert isinstance(a, A.Break) and isinstance(b, A.Continue)


class TestControlFlow:
    def test_if_without_else(self):
        (stmt,) = parse_main_body("if (x) { y = 1; }")
        assert isinstance(stmt, A.If) and stmt.else_body == []

    def test_if_else(self):
        (stmt,) = parse_main_body("if (x) { y = 1; } else { y = 2; }")
        assert len(stmt.else_body) == 1

    def test_else_if_chain(self):
        (stmt,) = parse_main_body(
            "if (a) { x = 1; } else if (b) { x = 2; } else { x = 3; }"
        )
        assert isinstance(stmt.else_body[0], A.If)
        assert len(stmt.else_body[0].else_body) == 1

    def test_for_full(self):
        (stmt,) = parse_main_body("for (var i = 0; i < 10; i = i + 1) { x = i; }")
        assert isinstance(stmt, A.For)
        assert isinstance(stmt.init, A.VarDecl)
        assert isinstance(stmt.cond, A.Binary)
        assert isinstance(stmt.step, A.Assign)

    def test_for_empty_clauses(self):
        (stmt,) = parse_main_body("for (;;) { break; }")
        assert stmt.init is None and stmt.cond is None and stmt.step is None

    def test_while(self):
        (stmt,) = parse_main_body("while (x > 0) { x = x - 1; }")
        assert isinstance(stmt, A.While)

    def test_nested_loops(self):
        (stmt,) = parse_main_body(
            "for (var i = 0; i < 2; i = i + 1) { while (x) { x = 0; } }"
        )
        assert isinstance(stmt.body[0], A.While)


class TestExpressions:
    def test_precedence_mul_over_add(self):
        (stmt,) = parse_main_body("x = 1 + 2 * 3;")
        assert stmt.value.op == "+"
        assert stmt.value.right.op == "*"

    def test_precedence_cmp_over_and(self):
        (stmt,) = parse_main_body("x = a < b && c > d;")
        assert stmt.value.op == "&&"
        assert stmt.value.left.op == "<"

    def test_precedence_and_over_or(self):
        (stmt,) = parse_main_body("x = a && b || c;")
        assert stmt.value.op == "||"
        assert stmt.value.left.op == "&&"

    def test_parentheses_override(self):
        (stmt,) = parse_main_body("x = (1 + 2) * 3;")
        assert stmt.value.op == "*"
        assert stmt.value.left.op == "+"

    def test_unary_minus_and_not(self):
        (stmt,) = parse_main_body("x = -a + !b;")
        assert isinstance(stmt.value.left, A.Unary)
        assert isinstance(stmt.value.right, A.Unary)

    def test_left_associativity(self):
        (stmt,) = parse_main_body("x = 10 - 3 - 2;")
        # (10 - 3) - 2
        assert stmt.value.left.op == "-"

    def test_call_with_nested_call(self):
        (stmt,) = parse_main_body("x = f(g(1), 2);")
        assert isinstance(stmt.value.args[0], A.Call)

    def test_string_argument(self):
        (stmt,) = parse_main_body('print("hi");')
        assert isinstance(stmt.expr.args[0], A.StrLit)


class TestNodeIds:
    def test_node_ids_unique(self):
        program = parse(
            "func main() { for (var i = 0; i < 3; i = i + 1) "
            "{ if (i) { foo(i); } } } func foo(x) { return x; }"
        )
        ids = [n.node_id for n in A.walk(program)]
        assert len(ids) == len(set(ids))


class TestErrors:
    @pytest.mark.parametrize(
        "src",
        [
            "func main() {",  # unterminated block
            "func main() { x = ; }",  # missing expression
            "func main() { if x { } }",  # missing parens
            "func main() { var ; }",  # missing name
            "main() {}",  # missing func keyword
            "func main() { x = 1 }",  # missing semicolon
        ],
    )
    def test_malformed_programs(self, src):
        with pytest.raises(ParseError):
            parse(src)
