"""Lexer unit tests."""

import pytest

from repro.minilang.lexer import LexError, tokenize
from repro.minilang.tokens import TokenType as T


def types(source):
    return [t.type for t in tokenize(source)]


def values(source):
    return [t.value for t in tokenize(source)[:-1]]


class TestBasicTokens:
    def test_empty_source_yields_eof(self):
        assert types("") == [T.EOF]

    def test_integer_literal(self):
        toks = tokenize("12345")
        assert toks[0].type is T.INT
        assert toks[0].value == "12345"

    def test_identifier(self):
        toks = tokenize("foo_bar9")
        assert toks[0].type is T.IDENT
        assert toks[0].value == "foo_bar9"

    def test_identifier_with_leading_underscore(self):
        assert tokenize("_x")[0].type is T.IDENT

    def test_keywords_are_distinguished(self):
        assert types("func var if else for while return break continue")[:-1] == [
            T.FUNC, T.VAR, T.IF, T.ELSE, T.FOR, T.WHILE,
            T.RETURN, T.BREAK, T.CONTINUE,
        ]

    def test_keyword_prefix_is_identifier(self):
        # "iffy" must not lex as IF + "fy"
        toks = tokenize("iffy formed")
        assert toks[0].type is T.IDENT and toks[0].value == "iffy"
        assert toks[1].type is T.IDENT and toks[1].value == "formed"

    def test_string_literal(self):
        toks = tokenize('"hello world"')
        assert toks[0].type is T.STRING
        assert toks[0].value == "hello world"


class TestOperators:
    @pytest.mark.parametrize(
        "src,expected",
        [
            ("+", T.PLUS), ("-", T.MINUS), ("*", T.STAR), ("/", T.SLASH),
            ("%", T.PERCENT), ("=", T.ASSIGN), ("<", T.LT), (">", T.GT),
            ("!", T.NOT), ("==", T.EQ), ("!=", T.NE), ("<=", T.LE),
            (">=", T.GE), ("&&", T.AND), ("||", T.OR),
        ],
    )
    def test_single_operator(self, src, expected):
        assert types(src)[0] is expected

    def test_two_char_ops_win_over_one_char(self):
        assert types("a<=b")[:-1] == [T.IDENT, T.LE, T.IDENT]
        assert types("a==b")[:-1] == [T.IDENT, T.EQ, T.IDENT]

    def test_adjacent_operators(self):
        # `a<-b` is LT then MINUS (no <- token)
        assert types("a<-b")[:-1] == [T.IDENT, T.LT, T.MINUS, T.IDENT]


class TestCommentsAndWhitespace:
    def test_line_comment_skipped(self):
        assert types("a // comment here\n b")[:-1] == [T.IDENT, T.IDENT]

    def test_block_comment_skipped(self):
        assert types("a /* x\n y */ b")[:-1] == [T.IDENT, T.IDENT]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(LexError):
            tokenize("a /* never closed")

    def test_division_not_confused_with_comment(self):
        assert types("a / b")[:-1] == [T.IDENT, T.SLASH, T.IDENT]


class TestPositions:
    def test_line_and_column_tracking(self):
        toks = tokenize("a\n  bb\nccc")
        assert (toks[0].line, toks[0].col) == (1, 1)
        assert (toks[1].line, toks[1].col) == (2, 3)
        assert (toks[2].line, toks[2].col) == (3, 1)

    def test_error_position_reported(self):
        with pytest.raises(LexError) as exc:
            tokenize("ok\n  @")
        assert exc.value.line == 2
        assert exc.value.col == 3


class TestErrors:
    def test_unknown_character(self):
        with pytest.raises(LexError):
            tokenize("$")

    def test_unterminated_string(self):
        with pytest.raises(LexError):
            tokenize('"abc')

    def test_newline_in_string(self):
        with pytest.raises(LexError):
            tokenize('"ab\ncd"')
