"""CST construction tests, including the paper's own examples."""

import pytest

from repro.minilang.builtins import make_classifier
from repro.minilang.cfg import build_cfg
from repro.minilang.parser import parse
from repro.static import cst as C
from repro.static.intra import build_intra_cst

# The paper's Figure 5 program, transliterated to MiniMPI.
FIG5 = """
func main() {
  for (var i = 0; i < k; i = i + 1) {
    if (myid % 2 == 0) {
      mpi_send(myid + 1, size, 0);
    } else {
      mpi_recv(myid - 1, size, 0);
    }
    bar();
  }
  foo();
  if (myid % 2 == 0) {
    mpi_reduce(0, 4);
  }
}
func bar() {
  for (var kk = 0; kk < n; kk = kk + 1) {
    mpi_bcast(0, 64);
  }
}
func foo() {
  var sum = 0;
  for (var j = 0; j < m; j = j + 1) {
    sum = sum + j;
  }
}
"""


def intra_cst(source: str, func: str = "main"):
    program = parse(source)
    cfg = build_cfg(program.functions[func])
    return build_intra_cst(cfg, make_classifier(program))


def shape(node: C.CSTNode):
    """(kind/name, children shapes) — structure with noise stripped."""
    label = node.kind if node.kind != C.CALL else node.name
    if node.kind == C.FUNC:
        label = f"func:{node.name}"
    return (label, tuple(shape(c) for c in node.children))


class TestIntraProcedural:
    def test_figure6_main_structure(self):
        """Paper Fig. 6: intra-procedural CST of main."""
        tree = intra_cst(FIG5)
        assert shape(tree) == (
            "root",
            (
                ("loop", (
                    ("branch", (("mpi_send", ()),)),
                    ("branch", (("mpi_recv", ()),)),
                    ("func:bar", ()),
                )),
                ("func:foo", ()),
                ("branch", (("mpi_reduce", ()),)),
                ("branch", ()),  # empty else path, pruned later
            ),
        )

    def test_bar_intra_cst(self):
        tree = intra_cst(FIG5, "bar")
        assert shape(tree) == ("root", (("loop", (("mpi_bcast", ()),)),))

    def test_procedure_without_calls_is_bare_root(self):
        tree = intra_cst(FIG5, "foo")
        pruned = C.prune(tree.copy())
        assert pruned.children == []

    def test_sequential_structures_ordered(self):
        tree = intra_cst(
            "func main() { mpi_barrier(); for (;x;) { mpi_send(1, 4, 0); } "
            "mpi_reduce(0, 4); }"
        )
        labels = [shape(c)[0] for c in tree.children]
        assert labels == ["mpi_barrier", "loop", "mpi_reduce"]

    def test_branch_vertex_per_path(self):
        tree = intra_cst(
            "func main() { if (x) { mpi_send(1, 4, 0); } else { mpi_recv(1, 4, 0); } }"
        )
        kinds = [(c.kind, c.branch_path) for c in tree.children]
        assert kinds == [(C.BRANCH, 0), (C.BRANCH, 1)]

    def test_loop_condition_calls_become_loop_children(self):
        tree = intra_cst("func main() { while (check()) { mpi_barrier(); } }",)
        # `check` is neither MPI nor user-defined -> ignored; barrier inside.
        (loop,) = tree.children
        assert shape(loop) == ("loop", (("mpi_barrier", ()),))

    def test_else_if_chain(self):
        tree = intra_cst(
            "func main() { if (a) { mpi_send(1,4,0); } else if (b) "
            "{ mpi_recv(1,4,0); } else { mpi_reduce(0,4); } }"
        )
        # outer branch path 1 contains the inner branch pair
        outer0, outer1 = tree.children
        assert shape(outer0) == ("branch", (("mpi_send", ()),))
        inner = outer1.children
        assert [shape(c)[0] for c in inner] == ["branch", "branch"]


class TestPruning:
    def test_prune_removes_non_mpi_leaves(self):
        tree = intra_cst(
            "func main() { if (x) { compute(1); } else { mpi_send(1, 4, 0); } }"
        )
        C.prune(tree)
        assert shape(tree) == ("root", (("branch", (("mpi_send", ()),)),))

    def test_prune_removes_empty_loops_iteratively(self):
        tree = intra_cst(
            "func main() { for (;x;) { for (;y;) { compute(1); } } mpi_barrier(); }"
        )
        C.prune(tree)
        assert shape(tree) == ("root", (("mpi_barrier", ()),))

    def test_prune_keeps_root_even_when_empty(self):
        tree = intra_cst("func main() { var x = 1; }")
        C.prune(tree)
        assert tree.kind == C.ROOT


class TestGids:
    def test_preorder_gids(self):
        tree = intra_cst(FIG5)
        C.prune(tree)
        C.assign_gids(tree)
        gids = [n.gid for n in tree.preorder()]
        assert gids == list(range(len(gids)))

    def test_find_gid(self):
        tree = intra_cst(FIG5)
        C.assign_gids(tree)
        assert tree.find_gid(0) is tree
        assert tree.find_gid(99999) is None


class TestSerialization:
    def test_roundtrip(self):
        tree = intra_cst(FIG5)
        C.prune(tree)
        C.assign_gids(tree)
        back = C.loads(C.dumps(tree))
        assert back.structurally_equal(tree)
        assert [n.gid for n in back.preorder()] == [n.gid for n in tree.preorder()]

    def test_save_load_file(self, tmp_path):
        tree = intra_cst(FIG5)
        C.assign_gids(tree)
        path = str(tmp_path / "prog.cst")
        C.save(tree, path)
        assert C.load(path).structurally_equal(tree)

    def test_dumps_is_compressed(self):
        tree = intra_cst(FIG5)
        data = C.dumps(tree)
        assert data[:2] == b"\x1f\x8b"  # gzip magic


class TestNodeBasics:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            C.CSTNode(kind="bogus")

    def test_copy_is_deep(self):
        tree = intra_cst(FIG5)
        dup = tree.copy()
        dup.children[0].children.clear()
        assert tree.children[0].children  # original untouched

    def test_size_counts_vertices(self):
        tree = intra_cst("func main() { mpi_barrier(); }")
        assert tree.size() == 2
