"""Dominator analysis tests, cross-checked against networkx."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.minilang.cfg import build_cfg
from repro.minilang.parser import parse
from repro.static.dominators import (
    dominates,
    dominator_tree,
    immediate_dominators,
    immediate_post_dominators,
)


def cfg_of(body: str):
    return build_cfg(parse(f"func main() {{ {body} }}").functions["main"])


def nx_idoms(cfg):
    g = nx.DiGraph()
    g.add_nodes_from(cfg.blocks)
    for b in cfg.blocks.values():
        for s in b.succs:
            g.add_edge(b.bid, s)
    idoms = dict(nx.immediate_dominators(g, cfg.entry))
    idoms[cfg.entry] = cfg.entry  # some nx versions omit the root self-map
    return idoms


BODIES = [
    "a();",
    "if (x) { a(); }",
    "if (x) { a(); } else { b(); } c();",
    "for (var i = 0; i < 3; i = i + 1) { a(); }",
    "while (x) { if (y) { a(); } else { b(); } }",
    "for (;x;) { while (y) { a(); } } b();",
    "if (x) { return; } a();",
    "while (1) { if (x) { break; } if (y) { continue; } a(); } b();",
    "if (a) { if (b) { c(); } else { d(); } } else { e(); }",
    "for (var i = 0; i < 2; i = i + 1) { for (var j = 0; j < 2; j = j + 1) "
    "{ for (var k = 0; k < 2; k = k + 1) { f(); } } }",
]


class TestAgainstNetworkx:
    @pytest.mark.parametrize("body", BODIES)
    def test_idoms_match_networkx(self, body):
        cfg = cfg_of(body)
        ours = immediate_dominators(cfg)
        theirs = nx_idoms(cfg)
        assert ours == dict(theirs)


class TestProperties:
    def test_entry_dominates_everything(self):
        cfg = cfg_of(BODIES[4])
        idom = immediate_dominators(cfg)
        for bid in idom:
            assert dominates(idom, cfg.entry, bid)

    def test_dominates_is_reflexive(self):
        cfg = cfg_of(BODIES[2])
        idom = immediate_dominators(cfg)
        for bid in idom:
            assert dominates(idom, bid, bid)

    def test_loop_header_dominates_body(self):
        cfg = cfg_of("for (var i = 0; i < 3; i = i + 1) { a(); }")
        idom = immediate_dominators(cfg)
        (header,) = [b.bid for b in cfg.blocks.values() if b.kind == "loop_header"]
        latch = [b.bid for b in cfg.blocks.values() if b.kind == "latch"][0]
        assert dominates(idom, header, latch)

    def test_dominator_tree_children(self):
        cfg = cfg_of("if (x) { a(); } else { b(); } c();")
        idom = immediate_dominators(cfg)
        tree = dominator_tree(idom)
        # every non-root node appears exactly once as a child
        children = [c for kids in tree.values() for c in kids]
        assert sorted(children) == sorted(b for b in idom if b != cfg.entry)


class TestPostDominators:
    def test_exit_post_dominates_all(self):
        cfg = cfg_of("if (x) { a(); } else { b(); } c();")
        ipdom = immediate_post_dominators(cfg)
        for bid in ipdom:
            assert dominates(ipdom, cfg.exit, bid)

    def test_join_post_dominates_branch(self):
        cfg = cfg_of("if (x) { a(); } else { b(); } c();")
        ipdom = immediate_post_dominators(cfg)
        (branch,) = [b.bid for b in cfg.blocks.values() if b.kind == "branch"]
        join = ipdom[branch]
        assert cfg.blocks[join].kind in ("join", "exit")


@st.composite
def random_body(draw, depth=0):
    """Random structured MiniMPI statement lists (for dominator fuzzing)."""
    n = draw(st.integers(1, 3))
    parts = []
    for _ in range(n):
        kind = draw(st.sampled_from(
            ["call", "if", "ifelse", "for", "while"] if depth < 2 else ["call"]
        ))
        if kind == "call":
            parts.append("a();")
        elif kind == "if":
            parts.append("if (x) { " + draw(random_body(depth + 1)) + " }")
        elif kind == "ifelse":
            parts.append(
                "if (x) { " + draw(random_body(depth + 1)) + " } else { "
                + draw(random_body(depth + 1)) + " }"
            )
        elif kind == "for":
            parts.append(
                "for (var i = 0; i < 2; i = i + 1) { "
                + draw(random_body(depth + 1)) + " }"
            )
        else:
            parts.append("while (x) { " + draw(random_body(depth + 1)) + " }")
    return " ".join(parts)


class TestFuzzAgainstNetworkx:
    @settings(max_examples=60, deadline=None)
    @given(random_body())
    def test_random_programs_match_networkx(self, body):
        cfg = cfg_of(body)
        assert immediate_dominators(cfg) == dict(nx_idoms(cfg))
