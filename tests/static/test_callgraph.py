"""Program call graph and SCC tests."""

from repro.minilang.parser import parse
from repro.static.callgraph import build_call_graph


def pcg(source: str):
    return build_call_graph(parse(source))


class TestEdges:
    def test_simple_chain(self):
        g = pcg("func main() { a(); } func a() { b(); } func b() { }")
        assert g.callees("main") == ["a"]
        assert g.callees("a") == ["b"]
        assert g.callees("b") == []

    def test_builtins_excluded(self):
        g = pcg("func main() { mpi_barrier(); compute(1); a(); } func a() { }")
        assert g.callees("main") == ["a"]

    def test_duplicate_call_sites_deduplicated(self):
        g = pcg("func main() { a(); a(); a(); } func a() { }")
        assert g.callees("main") == ["a"]

    def test_call_in_expression_found(self):
        g = pcg("func main() { var x = 1 + f(2) * g(3); } func f(a) {} func g(a) {}")
        assert set(g.callees("main")) == {"f", "g"}

    def test_call_in_loop_condition_found(self):
        g = pcg("func main() { while (f()) { } } func f() { return 0; }")
        assert g.callees("main") == ["f"]


class TestSCC:
    def test_acyclic_all_singletons(self):
        g = pcg("func main() { a(); b(); } func a() { } func b() { a(); }")
        assert all(len(c) == 1 for c in g.sccs())

    def test_self_recursion_detected(self):
        g = pcg("func main() { f(1); } func f(n) { if (n) { f(n - 1); } }")
        assert g.recursive_functions() == {"f"}

    def test_mutual_recursion_detected(self):
        g = pcg(
            "func main() { a(1); } func a(n) { if (n) { b(n); } } "
            "func b(n) { a(n - 1); }"
        )
        assert g.recursive_functions() == {"a", "b"}

    def test_non_recursive_not_flagged(self):
        g = pcg("func main() { a(); } func a() { }")
        assert g.recursive_functions() == set()

    def test_scc_reverse_topological_order(self):
        g = pcg("func main() { a(); } func a() { b(); } func b() { }")
        comps = g.sccs()
        flat = [c[0] for c in comps]
        assert flat.index("b") < flat.index("a") < flat.index("main")


class TestPostorder:
    def test_callees_before_callers(self):
        g = pcg("func main() { a(); b(); } func a() { c(); } func b() { } func c() { }")
        order = g.postorder()
        assert order.index("c") < order.index("a")
        assert order.index("a") < order.index("main")
        assert order.index("b") < order.index("main")

    def test_unreachable_functions_included(self):
        g = pcg("func main() { } func orphan() { }")
        assert set(g.postorder()) == {"main", "orphan"}

    def test_recursion_terminates(self):
        g = pcg("func main() { f(1); } func f(n) { f(n); }")
        assert "f" in g.postorder()
