"""Natural-loop detection tests."""

from repro.minilang.cfg import build_cfg
from repro.minilang.parser import parse
from repro.static.loops import find_back_edges, loop_nesting, natural_loops


def cfg_of(body: str):
    return build_cfg(parse(f"func main() {{ {body} }}").functions["main"])


class TestBackEdges:
    def test_straight_line_has_none(self):
        assert find_back_edges(cfg_of("a(); b();")) == []

    def test_single_loop_one_back_edge(self):
        cfg = cfg_of("while (x) { a(); }")
        edges = find_back_edges(cfg)
        assert len(edges) == 1
        tail, header = edges[0]
        assert cfg.blocks[header].kind == "loop_header"

    def test_nested_loops_two_back_edges(self):
        cfg = cfg_of("while (x) { while (y) { a(); } }")
        assert len(find_back_edges(cfg)) == 2

    def test_sequential_loops(self):
        cfg = cfg_of("while (x) { a(); } while (y) { b(); }")
        edges = find_back_edges(cfg)
        assert len(edges) == 2
        assert len({h for _, h in edges}) == 2


class TestNaturalLoops:
    def test_loop_body_contains_header_and_latch(self):
        cfg = cfg_of("for (var i = 0; i < 3; i = i + 1) { a(); }")
        loops = natural_loops(cfg)
        (loop,) = loops.values()
        assert loop.header in loop.body
        latch = [b.bid for b in cfg.blocks.values() if b.kind == "latch"][0]
        assert latch in loop.body

    def test_loop_body_excludes_exit(self):
        cfg = cfg_of("while (x) { a(); } b();")
        (loop,) = natural_loops(cfg).values()
        # blocks holding b() must be outside
        for bid, block in cfg.blocks.items():
            if any(i.name == "b" for i in block.invocations):
                assert bid not in loop.body

    def test_continue_merges_into_one_loop(self):
        cfg = cfg_of("while (x) { if (y) { continue; } a(); }")
        loops = natural_loops(cfg)
        assert len(loops) == 1
        (loop,) = loops.values()
        assert len(loop.back_edges) >= 1

    def test_loop_carries_ast_id(self):
        cfg = cfg_of("while (x) { a(); }")
        (loop,) = natural_loops(cfg).values()
        assert loop.ast_id is not None


class TestNesting:
    def test_inner_loop_parent_is_outer(self):
        cfg = cfg_of("while (x) { while (y) { a(); } }")
        loops = natural_loops(cfg)
        nesting = loop_nesting(loops)
        parents = set(nesting.values())
        assert None in parents  # the outer loop
        inner = [h for h, p in nesting.items() if p is not None]
        assert len(inner) == 1
        # inner's parent's body strictly contains inner's body
        outer = nesting[inner[0]]
        assert loops[inner[0]].body < loops[outer].body

    def test_triple_nesting_chain(self):
        cfg = cfg_of(
            "while (x) { while (y) { while (z) { a(); } } }"
        )
        nesting = loop_nesting(natural_loops(cfg))
        depths = sorted(nesting.values(), key=lambda v: (v is not None, v))
        assert list(nesting.values()).count(None) == 1

    def test_siblings_share_parent(self):
        cfg = cfg_of("while (x) { while (y) { a(); } while (z) { b(); } }")
        loops = natural_loops(cfg)
        nesting = loop_nesting(loops)
        roots = [h for h, p in nesting.items() if p is None]
        assert len(roots) == 1
        children = [h for h, p in nesting.items() if p == roots[0]]
        assert len(children) == 2
