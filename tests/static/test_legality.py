"""Trace-legality checks."""

import pytest

from repro.minilang.parser import parse
from repro.static.legality import (
    CompileError,
    check_trace_legality,
    functions_with_mpi,
)


def check(source: str):
    check_trace_legality(parse(source))


class TestMpiFunctionDetection:
    def test_direct(self):
        fns = functions_with_mpi(parse("func main() { mpi_barrier(); } func f() {}"))
        assert fns == {"main"}

    def test_transitive(self):
        fns = functions_with_mpi(
            parse(
                "func main() { a(); } func a() { b(); } "
                "func b() { mpi_barrier(); } func pure() { }"
            )
        )
        assert fns == {"main", "a", "b"}

    def test_transitive_through_recursion(self):
        fns = functions_with_mpi(
            parse("func main() { f(1); } func f(n) { if (n) { f(n-1); } mpi_barrier(); }")
        )
        assert "f" in fns and "main" in fns


class TestBreakContinue:
    def test_break_in_mpi_function_rejected(self):
        with pytest.raises(CompileError, match="break"):
            check("func main() { while (1) { break; } mpi_barrier(); }")

    def test_continue_in_mpi_function_rejected(self):
        with pytest.raises(CompileError, match="continue"):
            check(
                "func main() { for (var i = 0; i < 2; i = i + 1) "
                "{ if (i) { continue; } } mpi_barrier(); }"
            )

    def test_break_in_pure_function_allowed(self):
        check(
            "func main() { helper(); mpi_barrier(); } "
            "func helper() { while (1) { break; } }"
        )


class TestReturns:
    def test_final_return_allowed(self):
        check("func main() { mpi_barrier(); return; }")

    def test_guard_clause_without_trailing_mpi_allowed(self):
        # The paper's Fig. 8 pattern.
        check(
            "func main() { f(3); } "
            "func f(n) { if (n == 0) { return; } else "
            "{ mpi_bcast(0, 8); f(n - 1); } }"
        )

    def test_return_before_mpi_rejected(self):
        with pytest.raises(CompileError, match="return"):
            check("func main() { if (x) { return; } mpi_barrier(); }")

    def test_return_inside_loop_with_trailing_mpi_rejected(self):
        with pytest.raises(CompileError, match="return"):
            check(
                "func main() { for (var i = 0; i < 3; i = i + 1) "
                "{ if (i) { return; } mpi_barrier(); } }"
            )

    def test_return_value_in_pure_helper_allowed(self):
        check(
            "func main() { var x = f(2); mpi_send(x, 4, 0); } "
            "func f(n) { if (n) { return n * 2; } return 0; }"
        )


class TestLoopConditions:
    def test_mpi_in_while_condition_rejected(self):
        with pytest.raises(CompileError, match="loop condition"):
            check("func main() { while (mpi_test(0) == 0) { compute(1); } }")

    def test_mpi_function_in_for_condition_rejected(self):
        with pytest.raises(CompileError, match="loop condition"):
            check(
                "func main() { for (var i = 0; i < probe(); i = i + 1) { } } "
                "func probe() { mpi_barrier(); return 1; }"
            )

    def test_pure_call_in_condition_allowed(self):
        check(
            "func main() { while (f() > 0) { mpi_barrier(); } } "
            "func f() { return 0; }"
        )


class TestCompileIntegration:
    def test_compile_rejects_illegal(self):
        from repro.static.instrument import compile_minimpi

        with pytest.raises(CompileError):
            compile_minimpi("func main() { while (1) { break; } mpi_barrier(); }")

    def test_compile_without_cypress_skips_check(self):
        from repro.static.instrument import compile_minimpi

        compiled = compile_minimpi(
            "func main() { while (1) { break; } mpi_barrier(); }", cypress=False
        )
        assert compiled.static is None
