"""Compile-driver tests (instrument.py)."""

import pytest

from repro.static.instrument import CompiledProgram, compile_minimpi

SRC = """
func main() {
  for (var i = 0; i < 3; i = i + 1) {
    if (i % 2 == 0) { mpi_barrier(); }
  }
}
"""


class TestCompileModes:
    def test_with_cypress(self):
        compiled = compile_minimpi(SRC)
        assert compiled.static is not None
        assert compiled.plan is not None
        assert compiled.cst.size() >= 3
        assert compiled.compile_seconds > 0

    def test_without_cypress(self):
        compiled = compile_minimpi(SRC, cypress=False)
        assert compiled.static is None
        assert compiled.plan is None
        with pytest.raises(ValueError):
            _ = compiled.cst

    def test_cypress_costs_more(self):
        import statistics

        def best(f):
            return min(f() for _ in range(10))

        def t(cypress):
            import time

            t0 = time.perf_counter()
            compile_minimpi(SRC, cypress=cypress)
            return time.perf_counter() - t0

        with_pass = best(lambda: t(True))
        without = best(lambda: t(False))
        assert with_pass >= without * 0.8  # never dramatically cheaper

    def test_custom_entry(self):
        src = "func start() { mpi_barrier(); } func main() { }"
        compiled = compile_minimpi(src, entry="start")
        ops = [n.name for n in compiled.cst.preorder() if n.kind == "call"]
        assert ops == ["mpi_barrier"]

    def test_source_name_carried(self):
        compiled = compile_minimpi(SRC, source_name="myapp.mpi")
        assert compiled.source_name == "myapp.mpi"

    def test_plan_matches_static(self):
        compiled = compile_minimpi(SRC)
        assert (
            compiled.plan.instrumented_ast_ids
            == compiled.static.instrumented_ast_ids
        )

    def test_parse_errors_propagate(self):
        from repro.minilang.parser import ParseError

        with pytest.raises(ParseError):
            compile_minimpi("func main() { oops")

    def test_recursive_plan(self):
        src = """
        func main() { walk(3); }
        func walk(n) { if (n == 0) { return; } else { mpi_bcast(0, 8); walk(n - 1); } }
        """
        compiled = compile_minimpi(src)
        assert "walk" in compiled.plan.recursive_pseudo
