"""Cross-validation of the CFG-based CST builder.

The production CST builder works on the CFG (dominator-based loop
detection, post-dominator joins — the paper's Algorithm 1).  For
structured programs the same tree is derivable directly from the AST by a
much simpler recursion.  This test implements that independent reference
builder and fuzz-compares the two on random structured programs — any
divergence means the CFG pipeline (lowering, dominators, loops, region
walk) mis-handled some shape.
"""

import sys

from hypothesis import given, settings
from hypothesis import strategies as st

sys.path.insert(0, "tests")

from repro.minilang import ast_nodes as A  # noqa: E402
from repro.minilang.builtins import MPI_INTRINSICS, make_classifier  # noqa: E402
from repro.minilang.cfg import build_cfg  # noqa: E402
from repro.minilang.parser import parse  # noqa: E402
from repro.static.cst import BRANCH, CALL, FUNC, LOOP, ROOT, CSTNode  # noqa: E402
from repro.static.intra import build_intra_cst  # noqa: E402


# ---------------------------------------------------------------------------
# Reference builder: straight AST recursion (no CFG involved).
# ---------------------------------------------------------------------------


def _calls_in_expr(expr, out, user_funcs):
    for node in A.walk(expr):
        if isinstance(node, A.Call):
            pass  # ordering handled by _expr_calls below
    return out


def _expr_calls(expr, user_funcs):
    """Call leaves in evaluation order (matches the CFG lowering)."""
    out = []

    def walk_expr(e):
        if isinstance(e, (A.IntLit, A.StrLit, A.VarRef)):
            return
        if isinstance(e, A.Index):
            walk_expr(e.index)
            return
        if isinstance(e, A.Unary):
            walk_expr(e.operand)
            return
        if isinstance(e, A.Binary):
            walk_expr(e.left)
            walk_expr(e.right)
            return
        if isinstance(e, A.Call):
            for arg in e.args:
                walk_expr(arg)
            if e.name in MPI_INTRINSICS:
                out.append(CSTNode(kind=CALL, ast_id=e.node_id, name=e.name))
            elif e.name in user_funcs:
                out.append(CSTNode(kind=FUNC, ast_id=e.node_id, name=e.name))
            return

    walk_expr(expr)
    return out


def reference_cst(func: A.FuncDef, user_funcs) -> CSTNode:
    def stmt_nodes(stmt):
        out = []
        if isinstance(stmt, A.VarDecl):
            for e in (stmt.size, stmt.init):
                if e is not None:
                    out.extend(_expr_calls(e, user_funcs))
        elif isinstance(stmt, A.Assign):
            if stmt.index is not None:
                out.extend(_expr_calls(stmt.index, user_funcs))
            out.extend(_expr_calls(stmt.value, user_funcs))
        elif isinstance(stmt, A.ExprStmt):
            out.extend(_expr_calls(stmt.expr, user_funcs))
        elif isinstance(stmt, A.Return):
            if stmt.value is not None:
                out.extend(_expr_calls(stmt.value, user_funcs))
        elif isinstance(stmt, A.If):
            out.extend(_expr_calls(stmt.cond, user_funcs))
            then_v = CSTNode(kind=BRANCH, ast_id=stmt.node_id, branch_path=0)
            then_v.children = block_nodes(stmt.then_body)
            else_v = CSTNode(kind=BRANCH, ast_id=stmt.node_id, branch_path=1)
            else_v.children = block_nodes(stmt.else_body)
            out.extend([then_v, else_v])
        elif isinstance(stmt, (A.For, A.While)):
            if isinstance(stmt, A.For) and stmt.init is not None:
                out.extend(stmt_nodes(stmt.init))
            loop = CSTNode(kind=LOOP, ast_id=stmt.node_id)
            if stmt.cond is not None:
                loop.children.extend(_expr_calls(stmt.cond, user_funcs))
            loop.children.extend(block_nodes(stmt.body))
            if isinstance(stmt, A.For) and stmt.step is not None:
                loop.children.extend(stmt_nodes(stmt.step))
            out.append(loop)
        return out

    def block_nodes(stmts):
        out = []
        for s in stmts:
            out.extend(stmt_nodes(s))
        return out

    root = CSTNode(kind=ROOT, name=func.name)
    root.children = block_nodes(func.body)
    return root


def shape(node):
    label = (node.kind, node.ast_id, node.name, node.branch_path)
    return (label, tuple(shape(c) for c in node.children))


# ---------------------------------------------------------------------------
# Random structured programs (no early exits, no MPI in loop conditions —
# the traceable subset).
# ---------------------------------------------------------------------------


@st.composite
def structured_main(draw):
    lines = []

    def block(depth, indent):
        pad = "  " * indent
        for _ in range(draw(st.integers(1, 3))):
            kinds = ["mpi", "user", "compute", "expr"]
            if depth < 3:
                kinds += ["if", "ifelse", "for", "while"]
            kind = draw(st.sampled_from(kinds))
            if kind == "mpi":
                op = draw(st.sampled_from(
                    ["mpi_barrier()", "mpi_allreduce(8)",
                     "mpi_send(0, 8, 0)", "mpi_bcast(0, 64)"]
                ))
                lines.append(f"{pad}{op};")
            elif kind == "user":
                lines.append(f"{pad}helper();")
            elif kind == "compute":
                lines.append(f"{pad}compute(1);")
            elif kind == "expr":
                lines.append(f"{pad}x = x + helper() * 2;")
            elif kind == "if":
                lines.append(f"{pad}if (x > {draw(st.integers(0, 5))}) {{")
                block(depth + 1, indent + 1)
                lines.append(f"{pad}}}")
            elif kind == "ifelse":
                lines.append(f"{pad}if (x % 2 == 0) {{")
                block(depth + 1, indent + 1)
                lines.append(f"{pad}}} else {{")
                block(depth + 1, indent + 1)
                lines.append(f"{pad}}}")
            elif kind == "for":
                var = f"i{indent}_{len(lines)}"
                lines.append(
                    f"{pad}for (var {var} = 0; {var} < 2; {var} = {var} + 1) {{"
                )
                block(depth + 1, indent + 1)
                lines.append(f"{pad}}}")
            else:
                lines.append(f"{pad}while (x > 0) {{")
                block(depth + 1, indent + 1)
                lines.append(f"{pad}x = x - 1;")
                lines.append(f"{pad}}}")

    block(0, 1)
    return (
        "func main() {\n  var x = 3;\n" + "\n".join(lines) + "\n}\n"
        "func helper() { return 1; }\n"
    )


class TestCrossValidation:
    @settings(max_examples=120, deadline=None)
    @given(structured_main())
    def test_cfg_builder_matches_ast_reference(self, source):
        program = parse(source)
        user_funcs = set(program.functions)
        cfg = build_cfg(program.functions["main"])
        production = build_intra_cst(cfg, make_classifier(program))
        reference = reference_cst(program.functions["main"], user_funcs)
        assert shape(production) == shape(reference)

    def test_known_tricky_shapes(self):
        sources = [
            # branch directly inside loop body end
            "func main() { for (var i = 0; i < 2; i = i + 1) "
            "{ if (i) { mpi_barrier(); } } }",
            # call in for-init and step positions
            "func main() { var x = 0; for (x = helper(); x < 2; x = x + helper()) "
            "{ mpi_barrier(); } } func helper() { return 1; }",
            # nested if-else chains
            "func main() { if (a) { mpi_barrier(); } else if (b) "
            "{ mpi_allreduce(8); } else { mpi_bcast(0, 8); } }",
            # loop condition with a user call
            "func main() { while (helper() > 0) { mpi_barrier(); } } "
            "func helper() { return 0; }",
        ]
        for source in sources:
            program = parse(source)
            cfg = build_cfg(program.functions["main"])
            production = build_intra_cst(cfg, make_classifier(program))
            reference = reference_cst(
                program.functions["main"], set(program.functions)
            )
            assert shape(production) == shape(reference), source
