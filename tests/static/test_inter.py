"""Inter-procedural analysis tests (Algorithm 2, recursion conversion)."""

from repro.minilang.builtins import make_classifier
from repro.minilang.parser import parse
from repro.static import cst as C
from repro.static.inter import build_program_cst, pseudo_loop_id

FIG5 = """
func main() {
  for (var i = 0; i < k; i = i + 1) {
    if (myid % 2 == 0) {
      mpi_send(myid + 1, size, 0);
    } else {
      mpi_recv(myid - 1, size, 0);
    }
    bar();
  }
  foo();
  if (myid % 2 == 0) {
    mpi_reduce(0, 4);
  }
}
func bar() {
  for (var kk = 0; kk < n; kk = kk + 1) {
    mpi_bcast(0, 64);
  }
}
func foo() {
  var sum = 0;
  for (var j = 0; j < m; j = j + 1) {
    sum = sum + j;
  }
}
"""


def build(source: str):
    program = parse(source)
    return build_program_cst(program, make_classifier(program))


def shape(node):
    label = node.kind if node.kind != C.CALL else node.name
    return (label, tuple(shape(c) for c in node.children))


class TestFigure7:
    def test_complete_cst_matches_paper(self):
        """Paper Fig. 7: the fully inlined and pruned CST."""
        result = build(FIG5)
        assert shape(result.cst) == (
            "root",
            (
                ("loop", (
                    ("branch", (("mpi_send", ()),)),
                    ("branch", (("mpi_recv", ()),)),
                    ("loop", (("mpi_bcast", ()),)),   # bar() inlined
                )),
                # foo() vanished (no MPI); empty else path pruned
                ("branch", (("mpi_reduce", ()),)),
            ),
        )

    def test_gids_are_preorder(self):
        result = build(FIG5)
        gids = [n.gid for n in result.cst.preorder()]
        assert gids == list(range(len(gids)))

    def test_instrumented_ids_cover_all_control_vertices(self):
        result = build(FIG5)
        for node in result.cst.preorder():
            if node.kind in (C.LOOP, C.BRANCH):
                assert node.ast_id in result.instrumented_ast_ids


class TestInlining:
    def test_multi_site_inlining_duplicates_subtree(self):
        result = build(
            "func main() { halo(); mpi_barrier(); halo(); } "
            "func halo() { mpi_send(1, 4, 0); mpi_recv(1, 4, 0); }"
        )
        labels = [shape(c)[0] for c in result.cst.children]
        assert labels == ["mpi_send", "mpi_recv", "mpi_barrier",
                          "mpi_send", "mpi_recv"]

    def test_three_level_chain(self):
        result = build(
            "func main() { a(); } func a() { b(); } "
            "func b() { mpi_barrier(); }"
        )
        assert shape(result.cst) == ("root", (("mpi_barrier", ()),))

    def test_unknown_callee_dropped(self):
        result = build("func main() { unknown_helper(); mpi_barrier(); }")
        assert shape(result.cst) == ("root", (("mpi_barrier", ()),))

    def test_function_without_mpi_disappears(self):
        result = build(
            "func main() { noop(); mpi_barrier(); } func noop() { var x = 1; }"
        )
        assert shape(result.cst) == ("root", (("mpi_barrier", ()),))

    def test_missing_entry_rejected(self):
        program = parse("func f() { }")
        import pytest

        with pytest.raises(ValueError):
            build_program_cst(program, make_classifier(program), entry="main")


class TestRecursionConversion:
    REC = """
    func main() { walk(4); }
    func walk(n) {
      if (n == 0) {
        return;
      } else {
        mpi_bcast(0, 8);
        walk(n - 1);
        mpi_reduce(0, 8);
      }
    }
    """

    def test_pseudo_loop_wraps_recursive_body(self):
        result = build(self.REC)
        # main's CST: the inlined walk = pseudo loop containing the branches
        (loop,) = result.cst.children
        assert loop.kind == C.LOOP
        assert loop.name == "~walk"
        inner = [shape(c)[0] for c in loop.children]
        assert inner == ["branch"]  # path-1 branch holds bcast/reduce
        assert shape(loop.children[0])[1] == (("mpi_bcast", ()), ("mpi_reduce", ()))

    def test_recursive_call_leaf_dropped(self):
        result = build(self.REC)
        names = [n.name for n in result.cst.preorder() if n.kind == C.CALL]
        assert "walk" not in names

    def test_pseudo_id_registered(self):
        result = build(self.REC)
        assert "walk" in result.recursive_pseudo
        walk_def = parse(self.REC).functions["walk"]
        assert result.recursive_pseudo["walk"] == pseudo_loop_id(walk_def.node_id)

    def test_pseudo_ids_do_not_collide_with_ast_ids(self):
        result = build(self.REC)
        program = parse(self.REC)
        from repro.minilang.ast_nodes import walk as walk_ast

        ast_ids = {n.node_id for n in walk_ast(program)}
        assert not set(result.recursive_pseudo.values()) & ast_ids

    def test_mutual_recursion_converts(self):
        result = build(
            "func main() { ping(3); } "
            "func ping(n) { if (n > 0) { mpi_bcast(0, 8); pong(n); } } "
            "func pong(n) { if (n > 0) { mpi_reduce(0, 8); ping(n - 1); } }"
        )
        # One pseudo loop at the SCC entry; both functions' MPI present.
        loops = [n for n in result.cst.preorder() if n.kind == C.LOOP]
        assert len(loops) == 1
        names = {n.name for n in result.cst.preorder() if n.kind == C.CALL}
        assert names == {"mpi_bcast", "mpi_reduce"}

    def test_nonrecursive_program_has_no_pseudo(self):
        result = build(FIG5)
        assert result.recursive_pseudo == {}
