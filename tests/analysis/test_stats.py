"""Measurement-harness tests (the code behind Figs. 15/16/18/19)."""

import pytest

from repro.analysis.stats import measure_all_methods
from repro.workloads import get


@pytest.fixture(scope="module")
def leslie_measurement():
    return measure_all_methods(get("leslie3d"), 8, scale=0.3)


class TestMeasurement:
    def test_all_methods_present(self, leslie_measurement):
        assert set(leslie_measurement.methods) == {
            "gzip", "scalatrace", "scalatrace2", "cypress",
        }

    def test_sizes_positive(self, leslie_measurement):
        for method in leslie_measurement.methods.values():
            assert method.trace_bytes > 0

    def test_cypress_beats_raw(self, leslie_measurement):
        m = leslie_measurement.methods
        assert m["cypress"].trace_bytes < m["gzip"].trace_bytes

    def test_gzip_variants_smaller(self, leslie_measurement):
        m = leslie_measurement.methods
        assert m["cypress"].gzip_bytes < m["cypress"].trace_bytes
        assert m["gzip"].gzip_bytes < m["gzip"].trace_bytes

    def test_overhead_percentages(self, leslie_measurement):
        pct = leslie_measurement.overhead_pct("cypress", "intra")
        assert pct >= 0
        assert leslie_measurement.base_seconds > 0

    def test_inter_seconds_recorded(self, leslie_measurement):
        for name in ("scalatrace", "scalatrace2", "cypress"):
            assert leslie_measurement.methods[name].inter_seconds >= 0

    def test_subset_of_methods(self):
        m = measure_all_methods(get("ep"), 4, scale=0.5, methods=("cypress",))
        assert list(m.methods) == ["cypress"]

    def test_invalid_proc_count_rejected(self):
        with pytest.raises(ValueError):
            measure_all_methods(get("bt"), 7)


class TestShapes:
    def test_cypress_intra_cheaper_than_scalatrace(self):
        """The paper's headline: 5x lower intra-process overhead.  MG (the
        complex-pattern case) shows the gap robustly; we assert the
        direction (constants differ in Python)."""
        m = measure_all_methods(get("mg"), 16, scale=0.4)
        assert (
            m.methods["cypress"].intra_seconds
            < m.methods["scalatrace"].intra_seconds
        )

    def test_cypress_inter_cheaper_than_scalatrace(self):
        m = measure_all_methods(get("mg"), 16, scale=0.4)
        assert (
            m.methods["cypress"].inter_seconds
            < m.methods["scalatrace"].inter_seconds
        )
