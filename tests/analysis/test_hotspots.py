"""Structural hotspot analysis tests."""

import sys

sys.path.insert(0, "tests")
from helpers import run_traced  # noqa: E402

from repro.analysis.hotspots import hotspots, top_leaves  # noqa: E402
from repro.core.inter import merge_all  # noqa: E402

# Two loops: the second moves 100x the data -> must dominate.
SRC = """
func main() {
  mpi_init();
  for (var i = 0; i < 10; i = i + 1) {
    mpi_allreduce(64);
  }
  for (var j = 0; j < 10; j = j + 1) {
    mpi_alltoall(65536);
  }
  mpi_finalize();
}
"""


def merged_of(nprocs=8):
    _, rec, cyp, _ = run_traced(SRC, nprocs)
    return merge_all([cyp.ctt(r) for r in range(nprocs)])


class TestHotspots:
    def test_total_matches_sum_of_leaves(self):
        merged = merged_of()
        tree = hotspots(merged)
        leaves = top_leaves(merged, 100)
        assert tree.total_us > 0
        assert abs(tree.total_us - sum(h.total_us for h in leaves)) < 1e-6

    def test_heavy_loop_dominates(self):
        merged = merged_of()
        tree = hotspots(merged)
        loops = [c for c in tree.children if c.kind == "loop"]
        assert len(loops) == 2
        light, heavy = loops
        assert heavy.total_us > 5 * light.total_us

    def test_top_leaves_ordered(self):
        merged = merged_of()
        leaves = top_leaves(merged, 5)
        times = [h.total_us for h in leaves]
        assert times == sorted(times, reverse=True)
        assert leaves[0].label == "MPI_Alltoall"

    def test_call_counts(self):
        merged = merged_of(4)
        tree = hotspots(merged)
        # 10+10 collectives + init/finalize, x4 ranks
        assert tree.calls == 22 * 4

    def test_format_renders_percentages(self):
        merged = merged_of(4)
        text = hotspots(merged).format()
        assert "MPI_Alltoall" in text and "%" in text

    def test_cli_hotspots(self, tmp_path, capsys):
        from repro.cli import main

        trace = str(tmp_path / "t.cyp")
        assert main(["trace", "ft", "-n", "4", "--scale", "0.5", "-o", trace]) == 0
        assert main(["hotspots", trace, "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "top call sites" in out and "MPI_Alltoall" in out
