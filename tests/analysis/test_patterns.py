"""Pattern-extraction tests."""

import sys

import numpy as np

sys.path.insert(0, "tests")
from helpers import run_traced  # noqa: E402

from repro.analysis.patterns import (  # noqa: E402
    ascii_heatmap,
    communication_matrix,
    message_sizes,
    neighbor_sets,
)
from repro.core.inter import merge_all  # noqa: E402


def merged_of(source, nprocs, defines=None):
    _, rec, cyp, _ = run_traced(source, nprocs, defines=defines)
    return merge_all([cyp.ctt(r) for r in range(nprocs)])


RING = """
func main() {
  var rank = mpi_comm_rank();
  var size = mpi_comm_size();
  for (var i = 0; i < 4; i = i + 1) {
    mpi_send((rank + 1) % size, 100, 0);
    mpi_recv((rank + size - 1) % size, 100, 0);
  }
}
"""


class TestMatrix:
    def test_ring_volumes(self):
        m = merged_of(RING, 6)
        matrix = communication_matrix(m, 6)
        for r in range(6):
            assert matrix[r, (r + 1) % 6] == 400
        assert matrix.sum() == 6 * 400

    def test_collectives_excluded(self):
        m = merged_of("func main() { mpi_allreduce(4096); }", 4)
        assert communication_matrix(m, 4).sum() == 0

    def test_sendrecv_counted(self):
        m = merged_of(
            "func main() { var p = 1 - mpi_comm_rank(); "
            "mpi_sendrecv(p, 300, 0, p, 300, 0); }",
            2,
        )
        matrix = communication_matrix(m, 2)
        assert matrix[0, 1] == 300 and matrix[1, 0] == 300

    def test_isend_counted(self):
        m = merged_of(
            """
            func main() {
              var p = 1 - mpi_comm_rank();
              var r[2];
              r[0] = mpi_irecv(p, 128, 0);
              r[1] = mpi_isend(p, 128, 0);
              mpi_waitall(r, 2);
            }
            """,
            2,
        )
        assert communication_matrix(m, 2)[0, 1] == 128


class TestDerived:
    def test_neighbor_sets_symmetric_union(self):
        m = merged_of(RING, 4)
        matrix = communication_matrix(m, 4)
        neighbors = neighbor_sets(matrix)
        assert neighbors[0] == [1, 3]  # sends to 1, receives from 3

    def test_message_sizes_histogram(self):
        m = merged_of(RING, 4)
        sizes = message_sizes(m)
        assert sizes == {100: 16}

    def test_heatmap_renders(self):
        m = merged_of(RING, 8)
        art = ascii_heatmap(communication_matrix(m, 8))
        lines = art.splitlines()
        assert len(lines) == 8
        assert any(ch != " " for ch in art)

    def test_heatmap_downsamples_large(self):
        matrix = np.eye(128, dtype=np.int64) * 1000
        art = ascii_heatmap(matrix, width=32)
        assert len(art.splitlines()) == 32
