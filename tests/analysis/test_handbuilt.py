"""Analysis + query functions on *hand-built* merged trees.

Everything else in this package traces real MiniMPI programs; here the
merged CTT is constructed payload by payload (CST skeleton → per-rank
CTT → ``MergedCTT.from_rank`` → absorb → finalize), so every expected
number is written down literally rather than derived from a second
implementation.  This pins the aggregation formulas (count × members,
send+recv bytes, mean × count time) to known inputs."""

import numpy as np
import pytest

from repro.analysis import (
    communication_matrix,
    diff_traces,
    hotspots,
    message_sizes,
    neighbor_sets,
    summarize,
    top_leaves,
)
from repro import query
from repro.core.ctt import CTT
from repro.core.inter import MergedCTT
from repro.core.records import CompressedRecord, make_key
from repro.mpisim.events import NO_PEER
from repro.static.cst import CALL, LOOP, ROOT, CSTNode, assign_gids

_NOPEER = ("abs", NO_PEER)


def _skeleton() -> CSTNode:
    """root ─ loop#1(ast 1) ─ mpi_send@2 ; mpi_allreduce@3"""
    cst = CSTNode(kind=ROOT, children=[
        CSTNode(kind=LOOP, ast_id=1, children=[
            CSTNode(kind=CALL, ast_id=2, name="mpi_send"),
        ]),
        CSTNode(kind=CALL, ast_id=3, name="mpi_allreduce"),
    ])
    assign_gids(cst)
    return cst


def _send_record(delta: int, nbytes: int, iters: int,
                 duration_us: float) -> CompressedRecord:
    rec = CompressedRecord(key=make_key(
        "MPI_Send", ("rel", delta), _NOPEER, 7, 0, nbytes, 0, 0, -1,
        False, (),
    ))
    for i in range(iters):
        rec.add_occurrence(i, duration_us, 1.0)
    return rec


def _coll_record(nbytes: int, duration_us: float) -> CompressedRecord:
    rec = CompressedRecord(key=make_key(
        "MPI_Allreduce", _NOPEER, _NOPEER, 0, 0, nbytes, 0, 0, -1,
        False, (),
    ))
    rec.add_occurrence(0, duration_us, 2.0)
    return rec


def build_merged(nranks: int = 2, iters: int = 3,
                 nbytes: int = 512) -> MergedCTT:
    """Each rank sends ``iters`` × ``nbytes`` around the ring, then one
    allreduce.  Rank r's send takes (r+1)×10 µs per call."""
    cst = _skeleton()
    merged = None
    for rank in range(nranks):
        ctt = CTT(cst, rank)
        loop, leaf = ctt.vertex(1), ctt.vertex(2)
        coll = ctt.vertex(3)
        loop.loop_counts.append(iters)
        delta = 1 if rank + 1 < nranks else 1 - nranks  # ring wraparound
        leaf.records.append(
            _send_record(delta, nbytes, iters, 10.0 * (rank + 1)))
        coll.records.append(_coll_record(8, 5.0))
        part = MergedCTT.from_rank(ctt)
        merged = part if merged is None else merged.absorb(part)
    return merged.finalize()


NRANKS, ITERS, NBYTES = 3, 4, 256


@pytest.fixture(scope="module")
def merged():
    return build_merged(NRANKS, ITERS, NBYTES)


class TestPatternsOnHandbuilt:
    def test_matrix_is_exact_ring(self, merged):
        m = communication_matrix(merged, NRANKS)
        want = np.zeros((NRANKS, NRANKS), dtype=np.int64)
        for r in range(NRANKS):
            want[r, (r + 1) % NRANKS] = ITERS * NBYTES
        assert (m == want).all()

    def test_message_sizes(self, merged):
        assert message_sizes(merged) == {NBYTES: NRANKS * ITERS}

    def test_neighbor_sets(self, merged):
        # Symmetric union: ring rank r talks to both r+1 (sends) and
        # r-1 (receives from).
        m = communication_matrix(merged, NRANKS)
        assert neighbor_sets(m) == {
            r: sorted({(r + 1) % NRANKS, (r - 1) % NRANKS})
            for r in range(NRANKS)
        }

    def test_out_of_range_peer_warns_and_counts(self):
        from repro import obs

        # No wraparound: the last rank's +1 send exits the rank space.
        cst = _skeleton()
        ctt = CTT(cst, 1)
        ctt.vertex(1).loop_counts.append(2)
        ctt.vertex(2).records.append(_send_record(+1, 64, 2, 1.0))
        broken = MergedCTT.from_rank(ctt).finalize()
        registry = obs.enable()
        try:
            with pytest.warns(RuntimeWarning, match="out-of-range"):
                m = communication_matrix(broken, nprocs=2)
        finally:
            obs.disable()
        assert m.sum() == 0
        # One record x one rank = one dropped entry (the counter tracks
        # dropped records, unlike query.out_of_range_peers which tracks
        # messages).
        assert registry.counters["patterns.out_of_range_peers"] == 1


class TestSummarizeOnHandbuilt:
    def test_per_op_totals(self, merged):
        report = summarize(merged)
        assert report.nranks == NRANKS
        send = report.ops["MPI_Send"]
        assert send.calls == NRANKS * ITERS
        assert send.nbytes == NRANKS * ITERS * NBYTES
        # Rank r's sends: ITERS calls x 10(r+1) µs.
        assert send.time_us == pytest.approx(
            sum(ITERS * 10.0 * (r + 1) for r in range(NRANKS)))
        coll = report.ops["MPI_Allreduce"]
        assert coll.calls == NRANKS
        assert coll.nbytes == NRANKS * 8
        assert report.total_events == NRANKS * (ITERS + 1)
        assert report.total_gap_us == pytest.approx(
            NRANKS * ITERS * 1.0 + NRANKS * 2.0)
        assert report.p2p_volume() == NRANKS * ITERS * NBYTES
        assert report.collective_volume() == NRANKS * 8

    def test_format_mentions_every_op(self, merged):
        text = summarize(merged).format()
        assert "MPI_Send" in text and "MPI_Allreduce" in text


class TestHotspotsOnHandbuilt:
    def test_leaf_weights_exact(self, merged):
        leaves = {h.gid: h for h in top_leaves(merged, 10)}
        send_total = sum(ITERS * 10.0 * (r + 1) for r in range(NRANKS))
        assert leaves[2].total_us == pytest.approx(send_total)
        assert leaves[2].calls == NRANKS * ITERS
        assert leaves[3].total_us == pytest.approx(NRANKS * 5.0)
        # The send loop dominates the allreduce.
        assert top_leaves(merged, 1)[0].gid == 2

    def test_tree_rollup(self, merged):
        root = hotspots(merged)
        assert root.total_us == pytest.approx(
            sum(c.total_us for c in root.children))
        assert root.calls == NRANKS * (ITERS + 1)


class TestQueriesOnHandbuilt:
    def test_traffic_by_op(self, merged):
        t = query.traffic(merged, group_by="op")
        assert t["MPI_Send"] == query.Traffic(
            messages=NRANKS * ITERS, nbytes=NRANKS * ITERS * NBYTES)

    def test_ordering_loop_before_collective(self, merged):
        r = query.ordering(merged, 2, 3, 0)
        assert r.relation == "before"
        assert (r.count_a, r.count_b) == (ITERS, 1)

    def test_rank_profile_exact_time(self, merged):
        p = query.rank_profile(merged, 2)
        assert p.ops["MPI_Send"].time_us == pytest.approx(ITERS * 30.0)
        assert p.events == ITERS + 1


class TestDiffOnHandbuilt:
    def test_iteration_count_diff_names_the_loop_send(self):
        a = build_merged(2, iters=3)
        b = build_merged(2, iters=5)
        d = diff_traces(a, b)
        assert not d.identical
        for rd in d.diverged:
            # After 3 common sends, A is at the allreduce while B is
            # still in the loop — both sides named structurally.
            assert rd.first_divergence == 3
            assert rd.path_a == "MPI_Allreduce@3"
            assert rd.path_b == "loop#1/MPI_Send@2"
            assert rd.where() == (
                "at MPI_Allreduce@3 (A) vs loop#1/MPI_Send@2 (B)")
        assert "loop#1/MPI_Send@2" in d.format()

    def test_pure_tail_growth_points_at_extra_event(self):
        # Trailing loop: allreduce first, then the send loop.  Different
        # iteration counts then share a full common prefix and only the
        # lengths differ — the report points at B's first extra event.
        def trailing_loop(iters: int) -> MergedCTT:
            cst = CSTNode(kind=ROOT, children=[
                CSTNode(kind=CALL, ast_id=3, name="mpi_allreduce"),
                CSTNode(kind=LOOP, ast_id=1, children=[
                    CSTNode(kind=CALL, ast_id=2, name="mpi_send"),
                ]),
            ])
            assign_gids(cst)
            ctt = CTT(cst, 0)
            ctt.vertex(1).records.append(_coll_record(8, 5.0))
            ctt.vertex(2).loop_counts.append(iters)
            ctt.vertex(3).records.append(_send_record(0, 64, iters, 1.0))
            return MergedCTT.from_rank(ctt).finalize()

        d = diff_traces(trailing_loop(2), trailing_loop(3))
        assert not d.identical
        [rd] = d.diverged
        assert rd.first_divergence == -1
        assert (rd.len_a, rd.len_b) == (3, 4)
        assert rd.path_a == ""
        assert rd.path_b == "loop#2/MPI_Send@3"
        assert rd.where() == "at loop#2/MPI_Send@3"

    def test_payload_diff_carries_both_paths(self):
        a = build_merged(2, nbytes=128)
        b = build_merged(2, nbytes=4096)
        d = diff_traces(a, b)
        assert not d.identical
        rd = d.diverged[0]
        assert rd.first_divergence == 0
        assert rd.path_a == rd.path_b == "loop#1/MPI_Send@2"
        assert rd.where() == "at loop#1/MPI_Send@2"
