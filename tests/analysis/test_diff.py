"""Trace diff tests."""

import sys

sys.path.insert(0, "tests")
from helpers import run_traced  # noqa: E402

from repro.analysis.diff import diff_traces  # noqa: E402
from repro.core.inter import merge_all  # noqa: E402


def merged_of(source, nprocs, defines=None):
    _, _, cyp, _ = run_traced(source, nprocs, defines=defines)
    return merge_all([cyp.ctt(r) for r in range(nprocs)])


BASE = """
func main() {
  mpi_init();
  var rank = mpi_comm_rank();
  var size = mpi_comm_size();
  for (var i = 0; i < n; i = i + 1) {
    mpi_send((rank + 1) % size, 512, 1);
    mpi_recv((rank + size - 1) % size, 512, 1);
  }
  mpi_finalize();
}
"""


class TestDiff:
    def test_identical_traces(self):
        a = merged_of(BASE, 4, {"n": 5})
        b = merged_of(BASE, 4, {"n": 5})
        result = diff_traces(a, b)
        assert result.identical
        assert result.format() == "traces are identical"

    def test_iteration_count_change_detected(self):
        a = merged_of(BASE, 4, {"n": 5})
        b = merged_of(BASE, 4, {"n": 6})
        result = diff_traces(a, b)
        assert not result.identical
        assert len(result.diverged) == 4
        # Same prefix, different length -> divergence at the tail.
        d = result.diverged[0]
        assert d.len_a != d.len_b

    def test_parameter_change_detected(self):
        a = merged_of(BASE, 2, {"n": 3})
        b = merged_of(BASE.replace("512", "1024"), 2, {"n": 3})
        result = diff_traces(a, b)
        assert not result.identical
        d = result.diverged[0]
        assert d.first_divergence == 1  # Init matches, first send differs
        assert "MPI_Send" in d.detail

    def test_rank_count_mismatch(self):
        a = merged_of(BASE, 4, {"n": 2})
        b = merged_of(BASE, 2, {"n": 2})
        result = diff_traces(a, b)
        assert result.only_in_a == [2, 3]
        assert not result.identical

    def test_divergence_carries_vertex_paths(self):
        a = merged_of(BASE, 2, {"n": 3})
        b = merged_of(BASE.replace("512", "1024"), 2, {"n": 3})
        d = diff_traces(a, b).diverged[0]
        # Same program structure: both paths name the send inside the loop.
        assert d.path_a == d.path_b
        assert "MPI_Send@" in d.path_a and d.path_a.startswith("loop#")
        assert d.where() == f"at {d.path_a}"
        assert d.path_a in diff_traces(a, b).format()

    def test_empty_trees_are_identical(self):
        a = merged_of("func main() { }", 2)
        b = merged_of("func main() { }", 2)
        result = diff_traces(a, b)
        assert result.identical
        assert result.diverged == [] and result.only_in_a == []

    def test_empty_vs_nonempty(self):
        # An event-free tree has no rank groups at all, so every rank of
        # the non-empty trace shows up as "only in B".
        a = merged_of("func main() { }", 2)
        b = merged_of(BASE, 2, {"n": 1})
        result = diff_traces(a, b)
        assert not result.identical
        assert result.only_in_b == [0, 1]
        assert result.diverged == []

    def test_single_rank_traces(self):
        src = """
        func main() {
          mpi_init();
          for (var i = 0; i < n; i = i + 1) {
            mpi_bcast(0, 128);
          }
          mpi_finalize();
        }
        """
        a = merged_of(src, 1, {"n": 2})
        assert diff_traces(a, merged_of(src, 1, {"n": 2})).identical
        result = diff_traces(a, merged_of(src, 1, {"n": 4}))
        assert not result.identical
        [d] = result.diverged
        assert d.rank == 0
        assert (d.len_a, d.len_b) == (4, 6)
        # B's extra events are bcasts inside the loop.
        assert "MPI_Bcast@" in d.path_b or "MPI_Bcast@" in d.path_a

    def test_cli_diff(self, tmp_path, capsys):
        from repro.cli import main

        t1 = str(tmp_path / "a.cyp")
        t2 = str(tmp_path / "b.cyp")
        assert main(["trace", "ft", "-n", "4", "--scale", "0.5", "-o", t1]) == 0
        assert main(["trace", "ft", "-n", "4", "--scale", "0.5", "-o", t2]) == 0
        assert main(["diff", t1, t2]) == 0
        t3 = str(tmp_path / "c.cyp")
        # More FT iterations -> more alltoall/allreduce events.
        assert main(["trace", "ft", "-n", "4", "--scale", "1.0", "-o", t3]) == 0
        assert main(["diff", t1, t3]) == 1
