"""measure_all_methods with a custom CYPRESS config (ablation plumbing)."""

from repro.analysis.stats import measure_all_methods
from repro.core.intra import CypressConfig
from repro.workloads import get


class TestConfigPlumbing:
    def test_window_config_changes_cypress_size(self):
        w = get("mg")
        wide = measure_all_methods(
            w, 8, scale=0.3, methods=("cypress",),
            config=CypressConfig(window=None),
        )
        narrow = measure_all_methods(
            w, 8, scale=0.3, methods=("cypress",),
            config=CypressConfig(window=1),
        )
        assert (
            wide.methods["cypress"].trace_bytes
            < narrow.methods["cypress"].trace_bytes
        )

    def test_histogram_config_grows_trace(self):
        w = get("ft")
        mean = measure_all_methods(
            w, 8, scale=0.5, methods=("cypress",),
            config=CypressConfig(timing_mode="meanstd"),
        )
        hist = measure_all_methods(
            w, 8, scale=0.5, methods=("cypress",),
            config=CypressConfig(timing_mode="hist"),
        )
        assert (
            hist.methods["cypress"].trace_bytes
            >= mean.methods["cypress"].trace_bytes
        )
