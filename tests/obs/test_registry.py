"""Unit tests for the observability registry and exporters."""

import json

import jsonschema
import pytest

from repro import obs
from repro.obs import METRICS_SCHEMA, MetricsRegistry, NULL_SPAN, TimerStat


@pytest.fixture(autouse=True)
def _no_global_registry():
    """Every test starts and ends with observability off."""
    obs.disable()
    yield
    obs.disable()


class TestCountersGauges:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        reg.counter_add("a")
        reg.counter_add("a", 4)
        assert reg.counters["a"] == 5

    def test_gauge_set_last_write_wins(self):
        reg = MetricsRegistry()
        reg.gauge_set("g", 2.0)
        reg.gauge_set("g", 1.0)
        assert reg.gauges["g"] == 1.0

    def test_gauge_max_keeps_maximum(self):
        reg = MetricsRegistry()
        reg.gauge_max("g", 2.0)
        reg.gauge_max("g", 1.0)
        reg.gauge_max("g", 3.0)
        assert reg.gauges["g"] == 3.0


class TestTimers:
    def test_observe_aggregates(self):
        reg = MetricsRegistry()
        for s in (0.2, 0.1, 0.4):
            reg.observe("t", s)
        t = reg.timers["t"]
        assert t.count == 3
        assert t.total == pytest.approx(0.7)
        assert t.minimum == pytest.approx(0.1)
        assert t.maximum == pytest.approx(0.4)

    def test_merge(self):
        a, b = TimerStat(), TimerStat()
        a.observe(1.0)
        b.observe(0.5)
        b.observe(2.0)
        a.merge(b)
        assert a.count == 3
        assert a.minimum == pytest.approx(0.5)
        assert a.maximum == pytest.approx(2.0)

    def test_merge_empty_is_noop(self):
        a = TimerStat()
        a.observe(1.0)
        a.merge(TimerStat())
        assert a.count == 1 and a.minimum == pytest.approx(1.0)

    def test_dict_roundtrip(self):
        a = TimerStat()
        a.observe(0.25)
        a.observe(0.75)
        back = TimerStat.from_dict(a.to_dict())
        assert back.to_dict() == a.to_dict()

    def test_empty_dict_roundtrip_keeps_inf_sentinel(self):
        back = TimerStat.from_dict(TimerStat().to_dict())
        back.observe(0.5)  # min must not be stuck at the exported 0.0
        assert back.minimum == pytest.approx(0.5)


class TestSpans:
    def test_nesting_builds_dotted_paths(self):
        reg = MetricsRegistry()
        with reg.span("outer"):
            with reg.span("inner"):
                pass
        assert reg.span_paths() == ["outer/inner", "outer"]
        inner, outer = reg.spans
        assert inner["seconds"] <= outer["seconds"]
        assert outer["start_s"] <= inner["start_s"]

    def test_exception_unwinds_stack(self):
        reg = MetricsRegistry()
        with pytest.raises(RuntimeError):
            with reg.span("outer"):
                with reg.span("inner"):
                    raise RuntimeError("boom")
        assert reg._span_stack == []
        assert reg.span_paths() == ["outer/inner", "outer"]

    def test_attribute_span_backdates(self):
        reg = MetricsRegistry()
        with reg.span("outer"):
            reg.attribute_span("piecewise", 1.5)
        span = reg.spans[0]
        assert span["path"] == "outer/piecewise"
        assert span["seconds"] == pytest.approx(1.5)
        assert span["end_s"] - span["start_s"] == pytest.approx(1.5)


class TestActivation:
    def test_disabled_by_default(self):
        assert obs.active() is None
        assert not obs.enabled()
        assert obs.span("x") is NULL_SPAN

    def test_enable_disable(self):
        reg = obs.enable()
        assert obs.active() is reg
        assert obs.enabled()
        with obs.span("stage"):
            pass
        assert obs.disable() is reg
        assert obs.active() is None
        assert reg.span_paths() == ["stage"]

    def test_enable_installs_given_registry(self):
        mine = MetricsRegistry()
        assert obs.enable(mine) is mine
        assert obs.active() is mine

    def test_null_span_is_reusable_context_manager(self):
        with NULL_SPAN as s:
            assert s is NULL_SPAN
        with NULL_SPAN:
            pass


class TestMergeDict:
    def _worker_dict(self):
        w = MetricsRegistry()
        w.counter_add("c", 3)
        w.gauge_max("depth", 2.0)
        w.observe("t", 0.5)
        with w.span("work"):
            pass
        return w.to_dict()

    def test_counters_sum_gauges_max_timers_merge(self):
        parent = MetricsRegistry()
        parent.counter_add("c", 1)
        parent.gauge_max("depth", 5.0)
        parent.merge_dict(self._worker_dict())
        parent.merge_dict(self._worker_dict())
        assert parent.counters["c"] == 7
        assert parent.gauges["depth"] == 5.0
        assert parent.timers["t"].count == 2

    def test_worker_spans_fold_into_timers(self):
        parent = MetricsRegistry()
        parent.merge_dict(self._worker_dict())
        assert parent.spans == []  # wall clocks are not comparable
        assert parent.timers["span/work"].count == 1


class TestExport:
    def _populated(self):
        reg = MetricsRegistry()
        reg.counter_add("events", 42)
        reg.gauge_set("rate", 0.75)
        reg.observe("worker_s", 0.1)
        with reg.span("outer"):
            with reg.span("inner"):
                pass
        return reg

    def test_json_matches_schema(self):
        doc = json.loads(obs.to_json(self._populated()))
        jsonschema.validate(doc, METRICS_SCHEMA)

    def test_schema_rejects_malformed(self):
        doc = json.loads(obs.to_json(self._populated()))
        doc["counters"]["events"] = "not-an-int"
        with pytest.raises(jsonschema.ValidationError):
            jsonschema.validate(doc, METRICS_SCHEMA)
        doc = json.loads(obs.to_json(self._populated()))
        del doc["spans"]
        with pytest.raises(jsonschema.ValidationError):
            jsonschema.validate(doc, METRICS_SCHEMA)

    def test_write_json(self, tmp_path):
        path = tmp_path / "m.json"
        obs.write_json(self._populated(), str(path))
        doc = json.loads(path.read_text())
        jsonschema.validate(doc, METRICS_SCHEMA)
        assert doc["counters"]["events"] == 42

    def test_format_text_sections(self):
        text = obs.format_text(self._populated())
        for header in ("stage spans:", "counters:", "gauges:", "timers:"):
            assert header in text
        assert "events" in text and "42" in text
        # Nested span is indented one level deeper than its parent.
        lines = text.splitlines()
        outer = next(li for li in lines if "outer" in li)
        inner = next(li for li in lines if "inner" in li)
        assert len(inner) - len(inner.lstrip()) > len(outer) - len(outer.lstrip())

    def test_format_text_empty(self):
        assert obs.format_text(MetricsRegistry()) == "(no metrics recorded)"
