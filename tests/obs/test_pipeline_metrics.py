"""End-to-end instrumentation coverage: one observed pipeline run must
produce stage spans and counters for every stage (static CST build,
tracing, intra-process compression, inter-process merge, serialization,
replay), and worker-pool aggregation must reproduce the serial counters."""

import pytest

from repro import obs
from repro.core import serialize
from repro.core.api import run_cypress
from repro.core.decompress import decompress_all
from repro.core.intra import compress_streams

SOURCE = """
func main() {
  var rank = mpi_comm_rank();
  for (var i = 0; i < 6; i = i + 1) {
    if (rank % 2 == 0) {
      mpi_send(rank, 64, 3);
      mpi_recv(rank, 64, 3);
    } else {
      mpi_send(rank, 32, 5);
      mpi_recv(rank, 32, 5);
    }
    mpi_allreduce(8);
  }
}
"""

STAGES = (
    "static.compile",
    "trace.run",
    "intra.compress",
    "inter.merge",
    "serialize.dumps",
)


@pytest.fixture(autouse=True)
def _no_global_registry():
    obs.disable()
    yield
    obs.disable()


def _observed_run(**kwargs):
    registry = obs.enable()
    try:
        run = run_cypress(SOURCE, nprocs=4, **kwargs)
        merged = run.merge()
        blob = serialize.dumps(merged)
        replays = decompress_all(merged)
    finally:
        obs.disable()
    return registry, run, blob, replays


class TestStageCoverage:
    def test_every_stage_has_a_span(self):
        registry, _, _, _ = _observed_run()
        paths = registry.span_paths()
        for stage in STAGES + ("replay.decompress_all",):
            assert any(p.endswith(stage) for p in paths), (
                f"no span for stage {stage}: {paths}"
            )

    def test_intra_counters_and_hit_rates(self):
        registry, run, _, _ = _observed_run()
        c = registry.counters
        assert c["intra.events"] == run.run_result.total_events
        assert c["intra.events"] == c["trace.total_events"]
        assert c["intra.ranks"] == 4
        assert c["intra.records"] > 0
        # Hit rates are derived from the slow-path miss counters.
        assert registry.gauges["intra.mono_cache_hit_rate"] == pytest.approx(
            1.0 - c["intra.mono_cache_miss"] / c["intra.events"]
        )
        assert registry.gauges["intra.key_cache_hit_rate"] == pytest.approx(
            1.0 - c["intra.key_builds"] / c["intra.events"]
        )
        # Loops repeat identical events: key interning must mostly hit.
        assert registry.gauges["intra.key_cache_hit_rate"] >= 0.5

    def test_merge_and_serialize_counters(self):
        registry, _, blob, _ = _observed_run()
        c = registry.counters
        assert c["inter.ranks_merged"] == 4
        assert c["inter.intern_hits"] + c["inter.intern_misses"] > 0
        assert 0.0 <= registry.gauges["inter.intern_hit_rate"] <= 1.0
        assert c["serialize.bytes.total"] == len(blob)
        assert (
            c["serialize.bytes.header"]
            + c["serialize.bytes.topology"]
            + c["serialize.bytes.payload"]
            == c["serialize.bytes.total"]
        )
        assert registry.gauges["serialize.ratio_vs_raw"] > 1.0

    def test_replay_counters(self):
        registry, run, _, replays = _observed_run()
        c = registry.counters
        assert c["replay.ranks"] == 4
        assert c["replay.events"] == sum(len(ev) for ev in replays.values())
        assert c["replay.events"] == run.run_result.total_events

    def test_static_counters(self):
        registry, run, _, _ = _observed_run()
        assert registry.counters["static.compiles"] == 1
        assert (
            registry.counters["static.cst_vertices"] == run.compiled.cst.size()
        )

    def test_inline_compression_attributed_as_span(self):
        registry, _, _, _ = _observed_run()  # inline (no compress_workers)
        assert any(p.endswith("intra.compress") for p in registry.span_paths())


class TestWorkerAggregation:
    def test_parallel_counters_match_serial(self):
        run = run_cypress(SOURCE, nprocs=4, compress_workers=2)
        streams = run.capture.streams
        cst = run.compiled.cst

        def observed_counters(workers):
            registry = obs.enable()
            try:
                comp = compress_streams(cst, streams, workers=workers)
                comp.publish_metrics(registry)
            finally:
                obs.disable()
            return comp, {
                k: v
                for k, v in registry.counters.items()
                if k.startswith("intra.")
            }

        serial_comp, serial = observed_counters(None)
        parallel_comp, parallel = observed_counters(2)
        assert parallel == serial
        assert serial["intra.events"] == run.run_result.total_events
        # ... and the aggregation did not change the compression itself.
        ranks = sorted(serial_comp.ranks())
        assert [parallel_comp.ctt(r).record_count() for r in ranks] == [
            serial_comp.ctt(r).record_count() for r in ranks
        ]

    def test_parallel_run_reports_worker_pool(self):
        registry = obs.enable()
        try:
            run_cypress(SOURCE, nprocs=4, compress_workers=2)
        finally:
            obs.disable()
        # Pool may fall back to serial in restricted sandboxes; when it
        # ran, per-worker timings and the pool width must be recorded.
        if "intra.worker_seconds" in registry.timers:
            assert registry.timers["intra.worker_seconds"].count >= 1
            assert registry.gauges["intra.workers"] >= 1.0
