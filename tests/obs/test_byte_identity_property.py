"""The observability layer must never change what the pipeline produces:
for random structured programs, the serialized trace bytes are identical
with metrics on and off — across the serial (inline callback), batched
(deferred ``ingest_stream``) and parallel-worker compression paths."""

import sys

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

sys.path.insert(0, "tests")
from generators import program  # noqa: E402

from repro import obs  # noqa: E402
from repro.core import serialize  # noqa: E402
from repro.core.api import run_cypress  # noqa: E402

SETTINGS = dict(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

# serial = inline per-callback compression; batched = deferred
# ingest_stream in-process; parallel = deferred, sharded over 2 workers.
MODES = {"serial": None, "batched": 1, "parallel": 2}


def _trace_bytes(
    source: str, nprocs: int, compress_workers, metrics: bool,
    strict: bool = False,
):
    obs.disable()
    if metrics:
        obs.enable()
    try:
        run = run_cypress(
            source, nprocs, compress_workers=compress_workers, strict=strict
        )
        return serialize.dumps(run.merge())
    finally:
        obs.disable()


class TestMetricsByteIdentity:
    @settings(**SETTINGS)
    @given(program(allow_functions=True), st.sampled_from(sorted(MODES)))
    def test_trace_bytes_identical_with_metrics_on(self, source, mode):
        nprocs = 2
        off = _trace_bytes(source, nprocs, MODES[mode], metrics=False)
        on = _trace_bytes(source, nprocs, MODES[mode], metrics=True)
        assert on == off, f"{mode}: metrics-on trace differs from metrics-off"

    @settings(**SETTINGS)
    @given(program(allow_functions=True))
    def test_modes_identical_under_metrics(self, source):
        nprocs = 2
        blobs = {
            mode: _trace_bytes(source, nprocs, workers, metrics=True)
            for mode, workers in MODES.items()
        }
        assert blobs["batched"] == blobs["serial"]
        assert blobs["parallel"] == blobs["serial"]

    @settings(**SETTINGS)
    @given(program(allow_functions=True), st.sampled_from(sorted(MODES)))
    def test_lenient_mode_identical_to_strict_when_healthy(self, source, mode):
        """Fault tolerance must be free on healthy runs: the default
        lenient (quarantine-on-mismatch) path produces bytes identical
        to strict fail-fast mode in every compression mode."""
        nprocs = 2
        lenient = _trace_bytes(source, nprocs, MODES[mode], metrics=False)
        strict = _trace_bytes(
            source, nprocs, MODES[mode], metrics=False, strict=True
        )
        assert lenient == strict, f"{mode}: lenient bytes differ from strict"
