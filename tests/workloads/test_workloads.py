"""Workload kernels: execution, replay exactness, and pattern checks."""

import sys

import numpy as np
import pytest

sys.path.insert(0, "tests")
from helpers import assert_replay_exact, run_traced  # noqa: E402

from repro.analysis.patterns import (  # noqa: E402
    communication_matrix,
    message_sizes,
    neighbor_sets,
)
from repro.core.inter import merge_all  # noqa: E402
from repro.workloads import WORKLOADS, get, grid_2d, grid_3d  # noqa: E402

SMALL_PROCS = {
    "bt": 9, "cg": 8, "dt": 9, "ep": 8, "ft": 8, "is": 8,
    "lu": 8, "mg": 8, "sp": 9, "leslie3d": 8, "farm": 7, "amr": 16,
    "fig11": 8,
}


@pytest.mark.parametrize("name", sorted(WORKLOADS))
class TestEveryWorkload:
    def test_runs_and_replays_exactly(self, name):
        w = get(name)
        nprocs = SMALL_PROCS[name]
        _, rec, cyp, result = run_traced(
            w.source, nprocs, defines=w.defines(nprocs, 0.5), max_steps=None
        )
        assert result.total_events > 0
        assert_replay_exact(rec, cyp, nprocs, merged=True)

    def test_invalid_proc_count_rejected(self, name):
        w = get(name)
        bad = 3 if 3 not in w.valid_procs else 10**9
        with pytest.raises(ValueError):
            w.check_procs(bad)

    def test_scale_reduces_events(self, name):
        if name == "dt":
            pytest.skip("DT has no time-step loop")
        w = get(name)
        nprocs = SMALL_PROCS[name]
        half = w.defines(nprocs, 0.5)
        full = w.defines(nprocs, 1.0)
        assert any(half[k] < full[k] for k in half)


class TestGridHelpers:
    def test_grid_3d_factors(self):
        for p in (8, 16, 32, 64, 128, 256, 512):
            x, y, z = grid_3d(p)
            assert x * y * z == p
            assert x >= y >= z

    def test_grid_2d_factors(self):
        for p in (4, 8, 16, 64, 128, 512):
            x, y = grid_2d(p)
            assert x * y == p
            assert x >= y

    def test_non_pow2_rejected(self):
        with pytest.raises(ValueError):
            grid_3d(12)

    def test_unknown_workload(self):
        with pytest.raises(KeyError):
            get("hpl")


class TestPatternFidelity:
    def test_leslie3d_locality_matches_paper(self):
        """Paper Fig. 20a: at P=32, rank 0 talks only to ranks 1, 2, 8."""
        w = get("leslie3d")
        _, rec, cyp, _ = run_traced(w.source, 32, defines=w.defines(32, 0.2),
                                    max_steps=None)
        merged = merge_all([cyp.ctt(r) for r in range(32)])
        matrix = communication_matrix(merged, 32)
        neighbors = neighbor_sets(matrix)
        assert neighbors[0] == [1, 2, 8]

    def test_leslie3d_two_message_sizes(self):
        """Paper §VII-D: exactly two point-to-point sizes, 43KB and 83KB."""
        w = get("leslie3d")
        _, rec, cyp, _ = run_traced(w.source, 16, defines=w.defines(16, 0.2),
                                    max_steps=None)
        merged = merge_all([cyp.ctt(r) for r in range(16)])
        sizes = message_sizes(merged)
        assert set(sizes) == {43 * 1024, 83 * 1024}

    def test_mg_coarse_levels_use_subset_of_ranks(self):
        """Paper Fig. 17a: nested tori — long-stride partners appear."""
        w = get("mg")
        _, rec, cyp, _ = run_traced(w.source, 8, defines=w.defines(8, 0.3),
                                    max_steps=None)
        merged = merge_all([cyp.ctt(r) for r in range(8)])
        matrix = communication_matrix(merged, 8)
        # finest level: +-1; coarser z level: stride 4 partner for rank 0
        assert matrix[0, 1] > 0
        assert matrix[0, 4] > 0

    def test_bt_wraparound_neighbors(self):
        w = get("bt")
        nprocs = 9
        _, rec, cyp, _ = run_traced(w.source, nprocs,
                                    defines=w.defines(nprocs, 0.3),
                                    max_steps=None)
        merged = merge_all([cyp.ctt(r) for r in range(nprocs)])
        matrix = communication_matrix(merged, nprocs)
        # rank 0 on a 3x3 grid: row successor 1, col successor 3, diag 4
        assert matrix[0, 1] > 0 and matrix[0, 3] > 0 and matrix[0, 4] > 0

    def test_lu_wavefront_is_acyclic_per_sweep(self):
        w = get("lu")
        nprocs = 8
        _, rec, cyp, _ = run_traced(w.source, nprocs,
                                    defines=w.defines(nprocs, 0.3),
                                    max_steps=None)
        merged = merge_all([cyp.ctt(r) for r in range(nprocs)])
        matrix = communication_matrix(merged, nprocs)
        # neighbours only (grid 4x2): no long-range traffic
        px, py = grid_2d(nprocs)
        for src in range(nprocs):
            for dst in np.nonzero(matrix[src])[0]:
                dr = abs(int(dst) // px - src // px)
                dc = abs(int(dst) % px - src % px)
                assert dr + dc == 1

    def test_ep_has_no_point_to_point(self):
        w = get("ep")
        _, rec, cyp, _ = run_traced(w.source, 8, defines=w.defines(8, 0.5))
        merged = merge_all([cyp.ctt(r) for r in range(8)])
        matrix = communication_matrix(merged, 8)
        assert matrix.sum() == 0

    def test_dt_sink_gathers_from_leaves(self):
        w = get("dt")
        nprocs = 9
        _, rec, cyp, _ = run_traced(w.source, nprocs, defines=w.defines(nprocs, 1.0))
        merged = merge_all([cyp.ctt(r) for r in range(nprocs)])
        matrix = communication_matrix(merged, nprocs)
        # leaves (ranks with 4r+1 >= 9, i.e. 2..8) send results to rank 0
        assert all(matrix[leaf, 0] > 0 for leaf in range(2, 9))

    def test_sp_message_sizes_vary_per_rank(self):
        """The SP adversarial property the paper calls out."""
        w = get("sp")
        nprocs = 9
        _, rec, cyp, _ = run_traced(w.source, nprocs,
                                    defines=w.defines(nprocs, 0.3),
                                    max_steps=None)
        merged = merge_all([cyp.ctt(r) for r in range(nprocs)])
        assert len(message_sizes(merged)) > 10
