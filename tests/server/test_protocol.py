"""Wire protocol: frame round-trips, corruption, torn frames, caps."""

import socket
import threading

import pytest

from repro.server import protocol as proto


class TestFrameRoundTrip:
    def test_control_frame_roundtrip(self):
        frame = proto.control_frame(proto.HELLO, job="j", rank=3)
        kind, length = proto.frame_lengths(frame[: proto.HEADER_SIZE])
        assert kind == proto.HELLO
        payload = frame[proto.HEADER_SIZE : proto.HEADER_SIZE + length]
        crc = int.from_bytes(frame[-proto.CRC_SIZE :], "little")
        proto.check_frame(kind, length, payload, crc)  # no raise
        assert proto.decode_control(payload) == {"job": "j", "rank": 3}

    def test_batch_frame_roundtrip(self):
        blob = b"\x00\x01payload"
        frame = proto.batch_frame(7, blob)
        kind, length = proto.frame_lengths(frame[: proto.HEADER_SIZE])
        assert kind == proto.BATCH
        payload = frame[proto.HEADER_SIZE : proto.HEADER_SIZE + length]
        assert proto.decode_batch(payload) == (7, blob)

    def test_empty_payload_frame(self):
        frame = proto.encode_frame(proto.HEARTBEAT)
        kind, length = proto.frame_lengths(frame[: proto.HEADER_SIZE])
        assert (kind, length) == (proto.HEARTBEAT, 0)


class TestCorruption:
    def test_crc_mismatch_raises(self):
        frame = bytearray(proto.control_frame(proto.HELLO, job="j"))
        frame[proto.HEADER_SIZE] ^= 0xFF  # flip a payload byte
        kind, length = proto.frame_lengths(bytes(frame[: proto.HEADER_SIZE]))
        payload = bytes(frame[proto.HEADER_SIZE : proto.HEADER_SIZE + length])
        crc = int.from_bytes(frame[-proto.CRC_SIZE :], "little")
        with pytest.raises(proto.ProtocolError, match="checksum"):
            proto.check_frame(kind, length, payload, crc)

    def test_oversized_length_rejected_before_allocation(self):
        import struct

        header = struct.pack("<BI", proto.BATCH, proto.MAX_FRAME_BYTES + 1)
        with pytest.raises(proto.ProtocolError, match="cap"):
            proto.frame_lengths(header)

    def test_bad_control_payloads(self):
        with pytest.raises(proto.ProtocolError):
            proto.decode_control(b"\xff\xfe not json")
        with pytest.raises(proto.ProtocolError):
            proto.decode_control(b"[1, 2]")  # not an object

    def test_short_batch_payload(self):
        with pytest.raises(proto.ProtocolError):
            proto.decode_batch(b"\x00\x01")  # shorter than the seq u64


class TestSocketReader:
    def _pair(self):
        a, b = socket.socketpair()
        a.settimeout(5.0)
        b.settimeout(5.0)
        return a, b

    def test_read_frame_over_socket(self):
        a, b = self._pair()
        try:
            t = threading.Thread(
                target=b.sendall,
                args=(proto.control_frame(proto.BATCH_ACK, seq=9),),
            )
            t.start()
            kind, payload = proto.read_frame(a)
            t.join()
            assert kind == proto.BATCH_ACK
            assert proto.decode_control(payload) == {"seq": 9}
        finally:
            a.close()
            b.close()

    def test_torn_frame_is_connection_error(self):
        # Half a frame then a hangup: indistinguishable from a dead
        # peer, so it must surface as ConnectionError (the client's
        # retry path), never hang or return garbage.
        a, b = self._pair()
        try:
            frame = proto.batch_frame(1, b"x" * 64)
            b.sendall(frame[: len(frame) // 2])
            b.close()
            with pytest.raises(ConnectionError):
                proto.read_frame(a)
        finally:
            a.close()

    def test_eof_before_any_byte_is_connection_error(self):
        a, b = self._pair()
        try:
            b.close()
            with pytest.raises(ConnectionError):
                proto.read_frame(a)
        finally:
            a.close()
