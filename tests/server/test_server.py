"""The ingest daemon end-to-end (in-process): byte-identity with the
batch pipeline, checkpoint-driven recovery, idle-timeout quarantine."""

import os
import socket
import time

import pytest

from repro.core import run_cypress, serialize
from repro.core.quarantine import QuarantineReport
from repro.server import protocol as proto
from repro.server.client import (
    TraceClient,
    capture_workload,
    split_batches,
    submit_workload,
)
from repro.server.daemon import CypressTraceServer, ServerConfig, ServerThread
from repro.server.session import SessionStore
from repro.workloads import get as get_workload

WORKLOAD, NPROCS, SCALE = "ep", 4, 0.5


@pytest.fixture(scope="module")
def oracle():
    w = get_workload(WORKLOAD)
    run = run_cypress(w.source, NPROCS, defines=w.defines(NPROCS, SCALE))
    return serialize.dumps(run.merge(schedule="tree"))


def _config(tmp_path, **kw):
    return ServerConfig(
        state_dir=str(tmp_path / "state"),
        out_dir=str(tmp_path / "out"),
        checkpoint_interval=0.05,
        **kw,
    )


def _wait_file(path, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if os.path.exists(path):
            return open(path, "rb").read()
        time.sleep(0.05)
    raise AssertionError(f"{path} never appeared")


class TestEndToEnd:
    def test_submit_produces_byte_identical_trace(self, tmp_path, oracle):
        cfg = _config(tmp_path)
        with ServerThread(cfg) as st:
            port = st.server.port
            result = submit_workload(
                "127.0.0.1", port, job="e2e", workload=WORKLOAD,
                nprocs=NPROCS, scale=SCALE, batch_events=32,
            )
            got = _wait_file(os.path.join(cfg.out_dir, "e2e.cyp"))
            assert got == oracle
            assert result["batches"] >= NPROCS
            snap = st.server.metrics_snapshot()
        assert snap["server.batches"] == result["batches"]
        assert snap["server.hellos"] >= NPROCS
        assert snap["server.checkpoints"] >= 1
        assert snap["server.jobs_finalized"] == 1

    def test_empty_rank_streams_still_finalize(self, tmp_path):
        # A zero-event stream still ships one (empty) CYPK blob so the
        # session reaches EOS and the job can complete.
        blobs = split_batches([], 16)
        assert len(blobs) == 1
        cfg = _config(tmp_path)
        with ServerThread(cfg) as st:
            client = TraceClient(
                "127.0.0.1", st.server.port, job="solo", rank=0, nranks=1,
                workload=WORKLOAD, scale=SCALE,
            )
            client.send(blobs)
            _wait_file(os.path.join(cfg.out_dir, "solo.cyp"))


class TestRecovery:
    def test_recover_reingests_and_finalizes(self, tmp_path, oracle):
        # Persist complete sessions (as the checkpoint loop would have)
        # and then boot a *fresh* daemon over the state dir: recovery
        # alone must rebuild the compressors, re-ingest every durable
        # batch, and finalize the job byte-identically — the crash-
        # after-EOS_ACK case where no client ever comes back.
        cfg = _config(tmp_path)
        store = SessionStore(cfg.state_dir)
        streams = capture_workload(WORKLOAD, NPROCS, SCALE)
        from repro.server.session import SessionState

        for rank, stream in streams.items():
            s = SessionState(
                job="recov", rank=rank, nranks=NPROCS,
                workload=WORKLOAD, scale=SCALE,
            )
            for seq, blob in enumerate(split_batches(stream, 32), start=1):
                s.accept(seq, blob)
            s.eos_seq = s.acked_seq
            store.checkpoint(s)
        server = CypressTraceServer(cfg)
        assert server.recover() == NPROCS
        got = open(os.path.join(cfg.out_dir, "recov.cyp"), "rb").read()
        assert got == oracle
        assert server.metrics["server.recoveries"] == NPROCS

    def test_partial_sessions_recover_without_finalizing(self, tmp_path):
        cfg = _config(tmp_path)
        store = SessionStore(cfg.state_dir)
        streams = capture_workload(WORKLOAD, NPROCS, SCALE)
        from repro.server.session import SessionState

        s = SessionState(
            job="partial", rank=0, nranks=NPROCS,
            workload=WORKLOAD, scale=SCALE,
        )
        blobs = split_batches(streams[0], 32)
        s.accept(1, blobs[0])  # mid-stream: no EOS
        store.checkpoint(s)
        server = CypressTraceServer(cfg)
        assert server.recover() == 1
        job = server.jobs["partial"]
        assert not job.finalized
        assert job.sessions[0].acked_seq == 1
        assert not os.path.exists(os.path.join(cfg.out_dir, "partial.cyp"))


class TestIdleQuarantine:
    def test_stalled_rank_quarantined_and_job_finalizes(self, tmp_path):
        # Satellite: quarantine by idle timeout — the new stage
        # ("server") alongside the existing intra kill/hang/raise kinds.
        # Rank 1 sends one batch and goes silent; rank 0 completes.  The
        # reaper must quarantine rank 1, finalize the job without it,
        # and emit a quarantine report that round-trips from JSON.
        cfg = _config(tmp_path, idle_timeout=0.4)
        streams = capture_workload(WORKLOAD, 2, SCALE)
        with ServerThread(cfg) as st:
            port = st.server.port
            stale = socket.create_connection(("127.0.0.1", port), timeout=5)
            try:
                stale.sendall(proto.control_frame(
                    proto.HELLO, job="stall", rank=1, nranks=2,
                    workload=WORKLOAD, scale=SCALE,
                ))
                kind, _ = proto.read_frame(stale)
                assert kind == proto.HELLO_ACK
                blob = split_batches(streams[1], 32)[0]
                stale.sendall(proto.batch_frame(1, blob))
                kind, _ = proto.read_frame(stale)
                assert kind == proto.BATCH_ACK
                # ...and then rank 1 never speaks again.
                client = TraceClient(
                    "127.0.0.1", port, job="stall", rank=0, nranks=2,
                    workload=WORKLOAD, scale=SCALE,
                )
                client.send(split_batches(streams[0], 32))
                _wait_file(os.path.join(cfg.out_dir, "stall.cyp"))
                qjson = _wait_file(
                    os.path.join(cfg.out_dir, "stall.quarantine.json")
                )
            finally:
                stale.close()
        report = QuarantineReport.from_json(qjson.decode())
        assert report.ranks() == [1]
        item = report.get(1)
        assert item.stage == "server"
        assert "idle timeout" in item.error
        # The merged trace holds only the healthy rank.
        merged = serialize.load(os.path.join(cfg.out_dir, "stall.cyp"))
        assert merged.nranks_merged == 1
