"""Budget-mode daemon (docs/INTERNALS.md §15): byte-identity under
fold/spill pressure, budget-aware recovery, the budget-shrunk watermark,
and the pre-HELLO frame-loop hardening."""

import os
import socket

import pytest

from repro.core import run_cypress, serialize
from repro.server import protocol as proto
from repro.server.client import capture_workload, split_batches, submit_workload
from repro.server.daemon import CypressTraceServer, ServerConfig, ServerThread
from repro.server.session import SessionState, SessionStore
from repro.workloads import get as get_workload

WORKLOAD, NPROCS, SCALE = "ep", 4, 0.5


@pytest.fixture(scope="module")
def oracle():
    w = get_workload(WORKLOAD)
    run = run_cypress(w.source, NPROCS, defines=w.defines(NPROCS, SCALE))
    return serialize.dumps(run.merge(schedule="tree"))


def _config(tmp_path, **kw):
    return ServerConfig(
        state_dir=str(tmp_path / "state"),
        out_dir=str(tmp_path / "out"),
        checkpoint_interval=0.05,
        **kw,
    )


class TestBudgetEndToEnd:
    def test_budget_submit_byte_identical_with_spills(self, tmp_path, oracle):
        # A 1-byte budget maximizes pressure: every idle rank is
        # spilled, every finalized rank folds.  The output must still be
        # byte-identical to the offline pipeline.
        cfg = _config(tmp_path, memory_budget=1)
        with ServerThread(cfg) as st:
            submit_workload(
                "127.0.0.1", st.server.port, job="bj", workload=WORKLOAD,
                nprocs=NPROCS, scale=SCALE, batch_events=32,
            )
        # Snapshot after the drain: the final seal/fold runs on the
        # server thread right after the last EOS_ACK hits the wire.
        snap = st.server.metrics_snapshot()
        got = open(os.path.join(cfg.out_dir, "bj.cyp"), "rb").read()
        assert got == oracle
        assert snap["budget.folds"] == NPROCS
        assert snap["budget.spills"] > 0
        assert snap["budget.reloads"] > 0
        assert snap["budget.peak_live_bytes"] > 0
        # finalize closes the spill store — nothing left on disk
        spill_root = os.path.join(cfg.state_dir, "spill", "bj")
        assert not os.path.exists(spill_root) or not os.listdir(spill_root)

    def test_budget_recovery_finalizes_byte_identical(self, tmp_path, oracle):
        # Crash-after-EOS_ACK: a fresh budgeted daemon must rebuild from
        # checkpoints alone, folding recovered ranks as it goes.
        cfg = _config(tmp_path, memory_budget=1)
        store = SessionStore(cfg.state_dir)
        streams = capture_workload(WORKLOAD, NPROCS, SCALE)
        for rank, stream in streams.items():
            s = SessionState(
                job="brecov", rank=rank, nranks=NPROCS,
                workload=WORKLOAD, scale=SCALE,
            )
            for seq, blob in enumerate(split_batches(stream, 32), start=1):
                s.accept(seq, blob)
            s.eos_seq = s.acked_seq
            store.checkpoint(s)
        server = CypressTraceServer(cfg)
        assert server.recover() == NPROCS
        got = open(os.path.join(cfg.out_dir, "brecov.cyp"), "rb").read()
        assert got == oracle
        snap = server.metrics_snapshot()
        assert snap["budget.folds"] == NPROCS

    def test_effective_watermark_shrinks_under_overage(self, tmp_path):
        cfg = _config(tmp_path, memory_budget=1,
                      high_watermark=1 << 20, low_watermark=1 << 16)
        server = CypressTraceServer(cfg)
        assert server._effective_high_watermark() == 1 << 20
        # Simulate unevictable overage on a live job's counters.
        session = SessionState(job="wj", rank=0, nranks=1,
                               workload=WORKLOAD, scale=SCALE)
        job = server._job_for(session)
        job.compressor.budget_counters.live_bytes = (1 << 19) + 1
        assert server._effective_high_watermark() == (1 << 20) - (1 << 19)
        # ...but never below the low watermark (wildcard deadlock guard).
        job.compressor.budget_counters.live_bytes = 10 << 20
        assert server._effective_high_watermark() == 1 << 16


class TestPreHelloFrames:
    def test_heartbeat_and_status_before_hello_keep_reader_alive(
            self, tmp_path):
        # Satellite: probes before HELLO must answer ERROR without
        # killing the reader task — the same connection can then
        # identify itself and proceed.
        cfg = _config(tmp_path)
        with ServerThread(cfg) as st:
            s = socket.create_connection(
                ("127.0.0.1", st.server.port), timeout=10)
            try:
                for frame in (proto.control_frame(proto.HEARTBEAT),
                              proto.control_frame(proto.STATUS)):
                    s.sendall(frame)
                    kind, payload = proto.read_frame(s)
                    assert kind == proto.ERROR
                    assert "HELLO" in proto.decode_control(payload)["error"]
                s.sendall(proto.control_frame(
                    proto.HELLO, job="ph", rank=0, nranks=1,
                    workload=WORKLOAD, scale=SCALE,
                ))
                kind, payload = proto.read_frame(s)
                assert kind == proto.HELLO_ACK
            finally:
                s.close()

    def test_batch_before_hello_is_fatal(self, tmp_path):
        # Data frames without identity still tear the connection down.
        cfg = _config(tmp_path)
        with ServerThread(cfg) as st:
            s = socket.create_connection(
                ("127.0.0.1", st.server.port), timeout=10)
            try:
                s.sendall(proto.batch_frame(1, b""))
                kind, payload = proto.read_frame(s)
                assert kind == proto.ERROR
                assert "HELLO" in proto.decode_control(payload)["error"]
                # The server closes its end: the next read hits EOF.
                s.settimeout(10)
                assert s.recv(1) == b""
            finally:
                s.close()
