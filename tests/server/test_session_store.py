"""Session persistence: exactly-once accept, checkpoint round-trips,
torn-log salvage, meta slot alternation, and recovery semantics."""

import os

import pytest

from repro.server.session import (
    RecoveredSession,
    SessionState,
    SessionStore,
    check_job_id,
)


def _session(job="j1", rank=0, nranks=2):
    return SessionState(
        job=job, rank=rank, nranks=nranks, workload="ep", scale=0.5
    )


class TestSessionState:
    def test_accept_contiguous_and_dedup(self):
        s = _session()
        assert s.accept(1, b"a") is True
        assert s.accept(2, b"bb") is True
        assert s.acked_seq == 2
        assert s.buffered_bytes == 3
        # Duplicates (at or below acked) are the exactly-once dedup.
        assert s.accept(1, b"a") is False
        assert s.accept(2, b"bb") is False
        assert s.acked_seq == 2 and s.buffered_bytes == 3

    def test_accept_gap_raises(self):
        s = _session()
        s.accept(1, b"a")
        with pytest.raises(ValueError, match="out-of-order"):
            s.accept(3, b"c")

    def test_finalized_needs_eos_and_full_ack(self):
        s = _session()
        s.accept(1, b"a")
        assert not s.finalized
        s.eos_seq = 2
        assert not s.finalized
        s.accept(2, b"b")
        assert s.finalized

    def test_job_id_validation(self):
        assert check_job_id("run-1.retry_2") == "run-1.retry_2"
        for bad in ("", "../etc", "a b", "-lead", "x" * 200, None):
            with pytest.raises((ValueError, TypeError)):
                check_job_id(bad)


class TestCheckpointRoundTrip:
    def test_checkpoint_then_read_back(self, tmp_path):
        store = SessionStore(str(tmp_path))
        s = _session()
        s.accept(1, b"alpha")
        s.accept(2, b"beta")
        spilled = store.checkpoint(s)
        assert spilled == 9
        assert s.buffered_bytes == 0 and not s.mem_batches
        assert s.durable_seq == 2
        assert store.read_log_batches("j1", 0) == [(1, b"alpha"), (2, b"beta")]
        meta = store.read_meta("j1", 0)
        assert meta["acked_seq"] == 2
        assert meta["workload"] == "ep"

    def test_incremental_appends_accumulate(self, tmp_path):
        store = SessionStore(str(tmp_path))
        s = _session()
        s.accept(1, b"a")
        store.checkpoint(s)
        s.accept(2, b"b")
        s.accept(3, b"c")
        store.checkpoint(s)
        assert [seq for seq, _ in store.read_log_batches("j1", 0)] == [1, 2, 3]

    def test_torn_log_tail_salvages_prefix(self, tmp_path):
        store = SessionStore(str(tmp_path))
        s = _session()
        for i, blob in enumerate((b"one", b"two", b"three"), start=1):
            s.accept(i, blob)
        store.checkpoint(s)
        path = store.log_path("j1", 0)
        data = open(path, "rb").read()
        with open(path, "wb") as fh:
            fh.write(data[:-4])  # crash mid-append: tear the last section
        batches = store.read_log_batches("j1", 0)
        assert batches == [(1, b"one"), (2, b"two")]

    def test_log_garbage_yields_nothing(self, tmp_path):
        store = SessionStore(str(tmp_path))
        path = store.log_path("j1", 0)
        with open(path, "wb") as fh:
            fh.write(b"not a session log at all")
        assert store.read_log_batches("j1", 0) == []


class TestMetaSlots:
    def test_generations_alternate_slots(self, tmp_path):
        store = SessionStore(str(tmp_path))
        s = _session()
        s.accept(1, b"a")
        store.checkpoint(s)  # generation 1 -> slot a
        s.accept(2, b"b")
        store.checkpoint(s)  # generation 2 -> slot b
        slot_a, slot_b = store.meta_paths("j1", 0)
        assert os.path.exists(slot_a) and os.path.exists(slot_b)
        assert store.read_meta("j1", 0)["generation"] == 2

    def test_corrupt_newest_slot_falls_back_one_generation(self, tmp_path):
        store = SessionStore(str(tmp_path))
        s = _session()
        s.accept(1, b"a")
        store.checkpoint(s)
        s.accept(2, b"b")
        store.checkpoint(s)  # newest = generation 2 in slot b
        _slot_a, slot_b = store.meta_paths("j1", 0)
        data = open(slot_b, "rb").read()
        with open(slot_b, "wb") as fh:
            fh.write(data[: len(data) // 2])  # torn meta write
        meta = store.read_meta("j1", 0)
        assert meta["generation"] == 1
        assert meta["acked_seq"] == 1

    def test_both_slots_gone_means_no_meta(self, tmp_path):
        store = SessionStore(str(tmp_path))
        assert store.read_meta("j1", 0) is None


class TestRecovery:
    def test_load_all_discovers_sessions(self, tmp_path):
        store = SessionStore(str(tmp_path))
        for rank in (0, 1):
            s = _session(rank=rank)
            s.accept(1, b"x")
            store.checkpoint(s)
        recs = store.load_all()
        assert [(r.job, r.rank) for r in recs] == [("j1", 0), ("j1", 1)]
        state = recs[0].to_state()
        assert state.acked_seq == state.durable_seq == 1

    def test_eos_forgotten_when_tail_batches_lost(self, tmp_path):
        # Meta checkpointed with EOS, then the log tail tore: the EOS
        # outlived its batches, so recovery must drop the EOS mark and
        # let the client re-send from the durable point.
        store = SessionStore(str(tmp_path))
        s = _session()
        s.accept(1, b"one")
        s.accept(2, b"two")
        s.eos_seq = 2
        store.checkpoint(s)
        path = store.log_path("j1", 0)
        data = open(path, "rb").read()
        with open(path, "wb") as fh:
            fh.write(data[:-4])
        rec = store.load_all()[0]
        state = rec.to_state()
        assert state.durable_seq == 1
        assert state.eos_seq is None
        assert not state.finalized

    def test_log_without_meta_is_dropped(self, tmp_path):
        store = SessionStore(str(tmp_path))
        s = _session()
        s.accept(1, b"x")
        store.append_batches("j1", 0, s.mem_batches)  # log only, no meta
        assert store.load_all() == []

    def test_remove_clears_every_file(self, tmp_path):
        store = SessionStore(str(tmp_path))
        s = _session()
        s.accept(1, b"x")
        store.checkpoint(s)
        store.remove("j1", 0)
        assert store.discover() == []

    def test_quarantine_survives_meta_roundtrip(self, tmp_path):
        from repro.core.quarantine import QuarantinedRank

        store = SessionStore(str(tmp_path))
        s = _session()
        s.quarantined = QuarantinedRank(
            rank=0, stage="server", error="idle timeout after 1s", events=0
        )
        store.checkpoint(s)
        state = store.load_all()[0].to_state()
        assert state.quarantined is not None
        assert state.quarantined.stage == "server"
        assert "idle timeout" in state.quarantined.error


class TestRecoveredSession:
    def test_to_state_empty_batches(self):
        rec = RecoveredSession(
            job="j", rank=1,
            meta={"nranks": 4, "workload": "ep", "scale": 1.0,
                  "acked_seq": 0, "eos_seq": None, "generation": 3,
                  "quarantined": None},
            batches=[],
        )
        state = rec.to_state()
        assert state.acked_seq == 0 and state.durable_seq == 0
        assert state.generation == 3
