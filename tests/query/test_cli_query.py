"""`repro query` CLI: every query, JSON output, the --oracle cross-check
and its failure mode, and required-flag validation."""

import json

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def trace(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("query") / "cg.cyp")
    assert main(["trace", "cg", "-n", "4", "--scale", "0.3",
                 "-o", path]) == 0
    return path


class TestQueryCLI:
    def test_traffic_table_and_oracle(self, trace, capsys):
        assert main(["query", trace, "traffic", "--oracle"]) == 0
        captured = capsys.readouterr()
        assert "messages" in captured.out and "MPI_" in captured.out
        assert "oracle check: engine == replay" in captured.err

    def test_traffic_rank_pair_json(self, trace, tmp_path, capsys):
        out = str(tmp_path / "traffic.json")
        assert main(["query", trace, "traffic", "--group-by", "rank_pair",
                     "-o", out]) == 0
        data = json.loads(open(out).read())
        assert data  # non-empty matrix
        for key, cell in data.items():
            src, dst = key.split("->")
            assert src.isdigit() and dst.isdigit()
            assert cell["messages"] > 0

    def test_ordering(self, trace, capsys):
        assert main(["query", trace, "ordering", "--gid-a", "5",
                     "--gid-b", "7", "--rank", "0", "--oracle"]) == 0
        assert "rank 0" in capsys.readouterr().out

    def test_ordering_requires_flags(self, trace):
        with pytest.raises(SystemExit, match="--gid-a is required"):
            main(["query", trace, "ordering"])

    def test_rank_profile(self, trace, capsys):
        assert main(["query", trace, "rank-profile", "--rank", "1",
                     "--oracle"]) == 0
        out = capsys.readouterr().out
        assert "rank 1" in out and "events" in out

    def test_critical_leaves_json_stdout(self, trace, capsys):
        assert main(["query", trace, "critical-leaves", "--top", "3",
                     "-o", "-"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert len(data) == 3
        assert all("path" in leaf and "total_us" in leaf for leaf in data)

    def test_oracle_mismatch_exits_nonzero(self, trace, tmp_path, capsys,
                                           monkeypatch):
        from repro import query as q

        real = q.traffic

        def skewed(merged, group_by="op", nprocs=None):
            out = real(merged, group_by=group_by, nprocs=nprocs)
            key = next(iter(out))
            out[key] = q.Traffic(messages=out[key].messages + 1,
                                 nbytes=out[key].nbytes)
            return out

        monkeypatch.setattr(q, "traffic", skewed)
        assert main(["query", trace, "traffic", "--oracle"]) == 1
        assert "ORACLE MISMATCH" in capsys.readouterr().err

    def test_metrics_flag_reports_query_spans(self, trace, capsys):
        assert main(["query", trace, "critical-leaves", "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "query.critical_leaves" in out
