"""Engine == replay oracle on every registered workload, under every
merge schedule.

This is the acceptance gate for the query layer: for each workload in
the registry, trace it once, merge the per-rank CTTs under fold / tree /
parallel schedules, and assert that every query's decompression-free
answer equals the answer computed from full replay.  Replay per merged
tree happens once (``decompress_all``) and feeds every oracle."""

import itertools
import sys

import pytest

sys.path.insert(0, "tests")

from repro import query
from repro.core import run_cypress
from repro.core.decompress import decompress_all
from repro.core.inter import merge_all
from repro.static.cst import CALL
from repro.workloads import WORKLOADS

SCHEDULES = ("fold", "tree", "parallel")

#: Most leaves × ranks to sweep for the ordering query per tree — it is
#: O(pairs) and the point is coverage of shapes, not volume.
MAX_ORDERING_LEAVES = 8
MAX_ORDERING_RANKS = 3


def _nprocs(w) -> int:
    return min((p for p in w.valid_procs if p >= 4),
               default=min(w.valid_procs))


_CTTS: dict[str, tuple[list, int]] = {}


def _ctts(name: str):
    """Per-session cache: each workload is traced once, merged three ways."""
    if name not in _CTTS:
        w = WORKLOADS[name]
        nprocs = _nprocs(w)
        run = run_cypress(w.source, nprocs, defines=w.defines(nprocs, 0.2))
        _CTTS[name] = ([run.compressor.ctt(r) for r in range(nprocs)], nprocs)
    return _CTTS[name]


def _merged(name: str, schedule: str):
    ctts, nprocs = _ctts(name)
    if schedule == "parallel":
        return merge_all(ctts, schedule="tree", workers=2,
                         parallel_threshold=2), nprocs
    return merge_all(ctts, schedule=schedule), nprocs


@pytest.mark.parametrize(
    "name,schedule",
    list(itertools.product(sorted(WORKLOADS), SCHEDULES)),
)
def test_every_query_agrees_with_replay(name, schedule):
    merged, nprocs = _merged(name, schedule)
    traces = decompress_all(merged)

    for group_by in ("vertex", "op", "rank_pair"):
        query.assert_agrees(
            query.traffic(merged, group_by=group_by),
            query.traffic_via_replay(merged, group_by=group_by,
                                     traces=traces),
            f"{name}/{schedule}/traffic.{group_by}",
        )

    for rank in range(nprocs):
        query.assert_agrees(
            query.rank_profile(merged, rank),
            query.rank_profile_via_replay(merged, rank,
                                          events=traces.get(rank, [])),
            f"{name}/{schedule}/rank_profile.{rank}",
        )

    # k covers every leaf, so compare by gid: leaves whose true totals
    # tie can legitimately sort either way under float-ulp noise
    # (engine computes mean x count, the oracle sums means one event at
    # a time), and the agreement convention only promises per-leaf
    # values within 1e-9 — not a stable order between exact ties.
    query.assert_agrees(
        sorted(query.critical_leaves(merged, k=10**9),
               key=lambda c: c.gid),
        sorted(query.critical_leaves_via_replay(merged, k=10**9,
                                                traces=traces),
               key=lambda c: c.gid),
        f"{name}/{schedule}/critical_leaves",
    )

    index = query.TreeIndex(merged)
    leaves = [v.gid for v in merged.root.preorder() if v.kind == CALL]
    sample = leaves[:MAX_ORDERING_LEAVES]
    for rank in list(traces)[:MAX_ORDERING_RANKS]:
        events = traces[rank]
        for gid_a, gid_b in itertools.product(sample, repeat=2):
            query.assert_agrees(
                query.ordering(merged, gid_a, gid_b, rank, index=index),
                query.ordering_via_replay(merged, gid_a, gid_b, rank,
                                          events=events),
                f"{name}/{schedule}/ordering.{gid_a}-{gid_b}.r{rank}",
            )


def test_schedules_give_identical_answers():
    """The three merge schedules are association-free, so queries must
    not be able to tell them apart either."""
    results = []
    for schedule in SCHEDULES:
        merged, _ = _merged("cg", schedule)
        results.append((
            query.traffic(merged, group_by="op"),
            query.traffic(merged, group_by="rank_pair"),
            sorted(query.critical_leaves(merged, k=10**9),
                   key=lambda c: c.gid),
        ))
    for other in results[1:]:
        for got, want in zip(other, results[0]):
            query.assert_agrees(got, want, "schedule-independence")
