"""Unit tests for the decompression-free query engine: structural
addressing, sequence arithmetic, each query's semantics on known shapes,
and the observability wiring."""

import sys

import pytest

sys.path.insert(0, "tests")
from helpers import run_traced  # noqa: E402

from repro import obs, query  # noqa: E402
from repro.core.inter import merge_all  # noqa: E402
from repro.core.sequences import IntSequence  # noqa: E402
from repro.query.engine import _activation_of  # noqa: E402
from repro.static.cst import CALL  # noqa: E402


def merged_of(source, nprocs, defines=None):
    _, _, cyp, _ = run_traced(source, nprocs, defines=defines)
    return merge_all([cyp.ctt(r) for r in range(nprocs)])


RING = """
func main() {
  mpi_init();
  var rank = mpi_comm_rank();
  var size = mpi_comm_size();
  for (var i = 0; i < n; i = i + 1) {
    mpi_send((rank + 1) % size, 512, 1);
    mpi_recv((rank + size - 1) % size, 512, 1);
  }
  mpi_allreduce(8);
  mpi_finalize();
}
"""

SEQUENTIAL = """
func main() {
  mpi_init();
  mpi_allreduce(8);
  for (var i = 0; i < 4; i = i + 1) {
    mpi_bcast(0, 64);
  }
  mpi_barrier();
  mpi_finalize();
}
"""

ALTERNATING = """
func main() {
  mpi_init();
  var rank = mpi_comm_rank();
  for (var i = 0; i < 6; i = i + 1) {
    mpi_allreduce(8);
    mpi_bcast(0, 32);
  }
  if (rank == 0) {
    mpi_send(0, 16, 3);
    mpi_recv(0, 16, 3);
  }
  mpi_finalize();
}
"""


def leaf_gids(merged, op=None):
    return [
        v.gid for v in merged.root.preorder()
        if v.kind == CALL and (op is None or v.op == op)
    ]


# ---------------------------------------------------------------------------
# IntSequence arithmetic the engine leans on.


class TestSequenceArithmetic:
    def test_total_matches_expansion(self):
        for values in ([], [5], [3, 3, 3], [0, 1, 2, 3], [7, 2, 9, 9, 9, 4]):
            seq = IntSequence.from_values(values)
            assert seq.total() == sum(values)

    def test_value_at_matches_expansion(self):
        values = [2, 4, 6, 8, 1, 1, 1, 0, 5]
        seq = IntSequence.from_values(values)
        for i, v in enumerate(values):
            assert seq.value_at(i) == v

    def test_value_at_out_of_range(self):
        seq = IntSequence.from_values([1, 2, 3])
        with pytest.raises(IndexError):
            seq.value_at(3)
        with pytest.raises(IndexError):
            seq.value_at(-1)

    def test_activation_of_maps_exec_to_activation(self):
        # counts = [2, 0, 3]: execs 0-1 -> act 0, execs 2-4 -> act 2
        # (the zero-count activation is skipped).
        counts = IntSequence.from_values([2, 0, 3])
        assert [_activation_of(counts, j) for j in range(5)] == [0, 0, 2, 2, 2]
        with pytest.raises(query.QueryError):
            _activation_of(counts, 5)

    def test_activation_of_strided_term(self):
        # counts = [1, 2, 3] is one stride term; prefix sums 0, 1, 3.
        counts = IntSequence.from_values([1, 2, 3])
        assert [_activation_of(counts, j) for j in range(6)] == [0, 1, 1, 2, 2, 2]


# ---------------------------------------------------------------------------
# TreeIndex / paths.


class TestTreeIndex:
    def test_paths_and_depths(self):
        merged = merged_of(RING, 2, {"n": 3})
        index = query.TreeIndex(merged)
        send = leaf_gids(merged, "MPI_Send")[0]
        path = index.path(send)
        assert path.startswith("loop#") and path.endswith(f"MPI_Send@{send}")
        assert index.depth[send] == 2  # root -> loop -> leaf
        assert query.vertex_path(merged, send) == path

    def test_lca(self):
        merged = merged_of(RING, 2, {"n": 3})
        index = query.TreeIndex(merged)
        send = leaf_gids(merged, "MPI_Send")[0]
        recv = leaf_gids(merged, "MPI_Recv")[0]
        lca = index.lca_gid(send, recv)
        assert index.vertex(lca).kind == "loop"
        allreduce = leaf_gids(merged, "MPI_Allreduce")[0]
        assert index.lca_gid(send, allreduce) == merged.root.gid
        assert index.lca_gid(send, send) == send

    def test_unknown_gid_raises(self):
        merged = merged_of(RING, 2, {"n": 2})
        index = query.TreeIndex(merged)
        with pytest.raises(query.QueryError, match="no vertex"):
            index.vertex(10_000)

    def test_non_leaf_gid_raises(self):
        merged = merged_of(RING, 2, {"n": 2})
        index = query.TreeIndex(merged)
        loop_gid = next(
            v.gid for v in merged.root.preorder() if v.kind == "loop"
        )
        with pytest.raises(query.QueryError, match="not an MPI call leaf"):
            index.call_leaf(loop_gid)


# ---------------------------------------------------------------------------
# traffic.


class TestTraffic:
    def test_by_op_exact_counts(self):
        nprocs, n = 4, 5
        merged = merged_of(RING, nprocs, {"n": n})
        t = query.traffic(merged, group_by="op")
        assert t["MPI_Send"] == query.Traffic(
            messages=nprocs * n, nbytes=nprocs * n * 512
        )
        assert t["MPI_Recv"].messages == nprocs * n
        assert t["MPI_Allreduce"].messages == nprocs

    def test_by_vertex_keys_are_gids(self):
        merged = merged_of(RING, 2, {"n": 3})
        t = query.traffic(merged, group_by="vertex")
        assert set(t) == set(leaf_gids(merged))

    def test_rank_pair_is_ring(self):
        nprocs, n = 4, 3
        merged = merged_of(RING, nprocs, {"n": n})
        t = query.traffic(merged, group_by="rank_pair")
        assert set(t) == {(r, (r + 1) % nprocs) for r in range(nprocs)}
        for cell in t.values():
            assert cell == query.Traffic(messages=n, nbytes=n * 512)

    def test_bad_grouping_rejected(self):
        merged = merged_of(RING, 2, {"n": 1})
        with pytest.raises(ValueError, match="unknown traffic grouping"):
            query.traffic(merged, group_by="bogus")
        with pytest.raises(ValueError, match="unknown traffic grouping"):
            query.traffic_via_replay(merged, group_by="bogus")

    def test_out_of_range_peer_dropped_and_counted(self):
        merged = merged_of(RING, 2, {"n": 2})
        send = leaf_gids(merged, "MPI_Send")[0]
        vertex = query.TreeIndex(merged).vertex(send)
        for group in vertex.groups.values():
            for record in group.records:
                key = list(record.key)
                key[1] = ("rel", 999)  # decodes outside [0, nprocs)
                record.key = tuple(key)
        registry = obs.enable()
        try:
            t = query.traffic(merged, group_by="rank_pair")
        finally:
            obs.disable()
        assert t == {}  # both directions of the 2-ring went through gid
        assert registry.counters["query.out_of_range_peers"] == 4  # 2 ranks x 2 msgs
        # The damaged trace still matches its oracle: replay decodes the
        # same bogus peer and the oracle applies the same range filter.
        assert t == query.traffic_via_replay(merged, group_by="rank_pair")


# ---------------------------------------------------------------------------
# ordering.


class TestOrdering:
    def test_sequential_structures_are_ordered(self):
        merged = merged_of(SEQUENTIAL, 2)
        allreduce = leaf_gids(merged, "MPI_Allreduce")[0]
        bcast = leaf_gids(merged, "MPI_Bcast")[0]
        barrier = leaf_gids(merged, "MPI_Barrier")[0]
        assert query.ordering(merged, allreduce, bcast, 0).relation == "before"
        assert query.ordering(merged, bcast, barrier, 0).relation == "before"
        r = query.ordering(merged, barrier, allreduce, 1)
        assert r.relation == "after"
        assert (r.count_a, r.count_b) == (1, 1)

    def test_same_loop_body_alternates(self):
        merged = merged_of(ALTERNATING, 2)
        allreduce = leaf_gids(merged, "MPI_Allreduce")[0]
        bcast = leaf_gids(merged, "MPI_Bcast")[0]
        r = query.ordering(merged, allreduce, bcast, 0)
        # 6 iterations interleave allreduce/bcast events.
        assert r.relation == "interleaved"
        assert (r.count_a, r.count_b) == (6, 6)

    def test_loop_precedes_post_loop_branch(self):
        merged = merged_of(ALTERNATING, 2)
        bcast = leaf_gids(merged, "MPI_Bcast")[0]
        send = leaf_gids(merged, "MPI_Send")[0]
        assert query.ordering(merged, bcast, send, 0).relation == "before"

    def test_one_sided_and_empty(self):
        merged = merged_of(ALTERNATING, 2)
        allreduce = leaf_gids(merged, "MPI_Allreduce")[0]
        send = leaf_gids(merged, "MPI_Send")[0]
        # Only rank 0 takes the branch.
        assert query.ordering(merged, send, allreduce, 1).relation == "only-b"
        assert query.ordering(merged, allreduce, send, 1).relation == "only-a"
        recv = leaf_gids(merged, "MPI_Recv")[0]
        assert query.ordering(merged, send, recv, 1).relation == "neither"

    def test_same_gid_interleaved(self):
        merged = merged_of(SEQUENTIAL, 2)
        bcast = leaf_gids(merged, "MPI_Bcast")[0]
        assert query.ordering(merged, bcast, bcast, 0).relation == "interleaved"

    def test_non_leaf_rejected(self):
        merged = merged_of(RING, 2, {"n": 2})
        loop_gid = next(
            v.gid for v in merged.root.preorder() if v.kind == "loop"
        )
        leaf = leaf_gids(merged)[0]
        with pytest.raises(query.QueryError):
            query.ordering(merged, loop_gid, leaf, 0)


# ---------------------------------------------------------------------------
# rank_profile / critical_leaves.


class TestProfiles:
    def test_rank_profile_counts(self):
        nprocs, n = 4, 5
        merged = merged_of(RING, nprocs, {"n": n})
        p = query.rank_profile(merged, 0)
        assert p.ops["MPI_Send"].calls == n
        assert p.ops["MPI_Send"].nbytes == n * 512
        assert p.ops["MPI_Allreduce"].calls == 1
        # Init + n sends + n recvs + allreduce + finalize.
        assert p.events == 2 * n + 3

    def test_rank_profile_absent_rank_is_empty(self):
        merged = merged_of(RING, 2, {"n": 2})
        p = query.rank_profile(merged, 17)
        assert p.events == 0 and p.ops == {}

    def test_critical_leaves_paths_and_order(self):
        merged = merged_of(RING, 4, {"n": 5})
        leaves = query.critical_leaves(merged, k=100)
        assert leaves == sorted(leaves, key=lambda c: (-c.total_us, c.gid))
        by_op = {c.op for c in leaves}
        assert {"MPI_Send", "MPI_Recv", "MPI_Allreduce"} <= by_op
        for c in leaves:
            assert c.path.endswith(f"{c.op}@{c.gid}")

    def test_critical_leaves_k_truncates(self):
        merged = merged_of(RING, 4, {"n": 5})
        assert len(query.critical_leaves(merged, k=2)) == 2

    def test_rank_count(self):
        assert query.rank_count(merged_of(RING, 4, {"n": 1})) == 4


# ---------------------------------------------------------------------------
# Observability wiring.


class TestObs:
    def test_query_counters_and_spans(self):
        merged = merged_of(RING, 2, {"n": 3})
        leaf = leaf_gids(merged)[0]
        registry = obs.enable()
        try:
            query.traffic(merged)
            query.ordering(merged, leaf, leaf, 0)
            query.rank_profile(merged, 0)
            query.critical_leaves(merged, k=3)
        finally:
            obs.disable()
        assert registry.counters["query.calls"] == 4
        assert registry.counters["query.vertices"] > 0
        assert registry.counters["query.records"] > 0
        span_names = {s["name"] for s in registry.spans}
        for name in ("query.traffic", "query.ordering",
                     "query.rank_profile", "query.critical_leaves"):
            assert name in span_names
