"""Differential property: random programs × compression variants ×
merge schedules — every query equals its replay oracle.

Two tiers:

* a light always-on property (fastpath compression, tree merge) that
  rides in tier-1;
* the full sweep over {reference, fastpath, packed} compression ×
  {fold, tree, parallel} merge schedules, marked ``slow``.  It runs a
  small number of examples by default (tier-1 has no marker filter) and
  CI's query-differential job raises ``QUERY_SWEEP_EXAMPLES`` for a
  deeper pass.
"""

import itertools
import os
import sys

import pytest
from hypothesis import HealthCheck, given, settings

sys.path.insert(0, "tests")
from generators import program  # noqa: E402

from repro import query  # noqa: E402
from repro.core import packed  # noqa: E402
from repro.core.decompress import decompress_all  # noqa: E402
from repro.core.inter import merge_all  # noqa: E402
from repro.core.intra import (  # noqa: E402
    CypressConfig,
    IntraProcessCompressor,
    compress_streams,
)
from repro.driver import run_compiled  # noqa: E402
from repro.mpisim.pmpi import MultiSink, StreamCaptureSink  # noqa: E402
from repro.static.cst import CALL  # noqa: E402
from repro.static.instrument import compile_minimpi  # noqa: E402

NPROCS = 4

SWEEP_EXAMPLES = int(os.environ.get("QUERY_SWEEP_EXAMPLES", "10"))

SETTINGS = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def _captured_streams(source: str):
    compiled = compile_minimpi(source)
    capture = StreamCaptureSink()
    run_compiled(compiled, NPROCS, tracer=MultiSink([capture]))
    return compiled, capture.streams


def _compress(compiled, streams, variant: str) -> IntraProcessCompressor:
    if variant == "reference":
        return compress_streams(compiled.cst, streams,
                                config=CypressConfig(fastpath=False))
    if variant == "packed":
        blobs = {rank: packed.encode_stream(stream).to_bytes()
                 for rank, stream in streams.items()}
        return compress_streams(compiled.cst, blobs)
    return compress_streams(compiled.cst, streams)  # fastpath


def _merge(compressor, schedule: str):
    ctts = [compressor.ctt(r) for r in range(NPROCS)]
    if schedule == "parallel":
        return merge_all(ctts, schedule="tree", workers=2,
                         parallel_threshold=2)
    return merge_all(ctts, schedule=schedule)


def _check_all_queries(merged, label: str) -> None:
    traces = decompress_all(merged)
    for group_by in ("vertex", "op", "rank_pair"):
        query.assert_agrees(
            query.traffic(merged, group_by=group_by),
            query.traffic_via_replay(merged, group_by=group_by,
                                     traces=traces),
            f"{label}/traffic.{group_by}",
        )
    for rank in range(NPROCS):
        query.assert_agrees(
            query.rank_profile(merged, rank),
            query.rank_profile_via_replay(merged, rank,
                                          events=traces.get(rank, [])),
            f"{label}/rank_profile.{rank}",
        )
    query.assert_agrees(
        sorted(query.critical_leaves(merged, k=10**9), key=lambda c: c.gid),
        sorted(query.critical_leaves_via_replay(merged, k=10**9,
                                                traces=traces),
               key=lambda c: c.gid),
        f"{label}/critical_leaves",
    )
    index = query.TreeIndex(merged)
    leaves = [v.gid for v in merged.root.preorder() if v.kind == CALL][:6]
    for rank in range(min(NPROCS, 2)):
        events = traces.get(rank, [])
        for gid_a, gid_b in itertools.product(leaves, repeat=2):
            query.assert_agrees(
                query.ordering(merged, gid_a, gid_b, rank, index=index),
                query.ordering_via_replay(merged, gid_a, gid_b, rank,
                                          events=events),
                f"{label}/ordering.{gid_a}-{gid_b}.r{rank}",
            )


class TestQueryDifferential:
    @settings(max_examples=10, **SETTINGS)
    @given(program(allow_functions=True))
    def test_fastpath_tree_light(self, source):
        compiled, streams = _captured_streams(source)
        merged = _merge(_compress(compiled, streams, "fastpath"), "tree")
        _check_all_queries(merged, "fastpath/tree")

    @pytest.mark.slow
    @settings(max_examples=SWEEP_EXAMPLES, **SETTINGS)
    @given(program(allow_functions=True, allow_subcomms=True))
    def test_full_variant_matrix(self, source):
        compiled, streams = _captured_streams(source)
        for variant in ("reference", "fastpath", "packed"):
            compressor = _compress(compiled, streams, variant)
            for schedule in ("fold", "tree", "parallel"):
                merged = _merge(compressor, schedule)
                _check_all_queries(merged, f"{variant}/{schedule}")
