"""Shared test utilities."""

from __future__ import annotations

from repro.baselines.scalatrace import event_signature
from repro.core.decompress import decompress_merged_rank, decompress_rank
from repro.core.inter import merge_all
from repro.core.intra import CypressConfig, IntraProcessCompressor
from repro.driver import run_compiled
from repro.mpisim.pmpi import MultiSink, RecordingSink
from repro.static.instrument import compile_minimpi


def run_traced(
    source: str,
    nprocs: int,
    defines: dict[str, int] | None = None,
    config: CypressConfig | None = None,
    max_steps: int | None = 2_000_000,
):
    """Compile + run with both a ground-truth recorder and the CYPRESS
    compressor attached.  Returns (compiled, recorder, compressor, result).
    """
    compiled = compile_minimpi(source)
    recorder = RecordingSink()
    compressor = IntraProcessCompressor(compiled.cst, config=config)
    result = run_compiled(
        compiled,
        nprocs,
        defines=defines,
        tracer=MultiSink([recorder, compressor]),
        max_steps=max_steps,
    )
    return compiled, recorder, compressor, result


def assert_replay_exact(recorder, compressor, nprocs: int, merged: bool = False):
    """Sequence-preservation check for every rank."""
    merged_ctt = None
    if merged:
        merged_ctt = merge_all([compressor.ctt(r) for r in range(nprocs)])
    for rank in range(nprocs):
        truth = [e.replay_tuple() for e in recorder.events.get(rank, [])]
        if merged:
            replay = [e.call_tuple() for e in decompress_merged_rank(merged_ctt, rank)]
        else:
            replay = [e.call_tuple() for e in decompress_rank(compressor.ctt(rank))]
        assert replay == truth, (
            f"rank {rank}: replay diverges at index "
            f"{next((i for i, (a, b) in enumerate(zip(replay, truth)) if a != b), min(len(replay), len(truth)))}"
            f" ({len(replay)} vs {len(truth)} events)"
        )
    return merged_ctt


def truth_signatures(recorder, rank: int):
    return [event_signature(e, rank) for e in recorder.events.get(rank, [])]
