"""Smoke-run the example scripts (they are part of the public surface)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "CST extracted" in out
        assert "exact original order" in out

    def test_compare_compressors_small(self):
        out = run_example("compare_compressors.py", "ft", "8")
        assert "cypress" in out and "scalatrace" in out

    def test_pattern_analysis_small(self):
        out = run_example("pattern_analysis.py", "bt", "9")
        assert "communicates with" in out

    def test_python_frontend(self):
        out = run_example("python_frontend.py")
        assert "replay check" in out

    @pytest.mark.slow
    def test_performance_prediction(self):
        out = run_example("performance_prediction.py")
        assert "average prediction error" in out
