"""Python-frontend tests (annotated rank functions, declared structure)."""

import pytest

from repro.core.intra import CompressionError
from repro.frontend import S, StructureError, build_structure, run_python
from repro.mpisim import RecordingSink
from repro.static.cst import BRANCH, CALL, LOOP


def assert_exact(run, rec, nprocs):
    for r in range(nprocs):
        truth = [e.replay_tuple() for e in rec.events.get(r, [])]
        got = [e.call_tuple() for e in run.replay(r)]
        assert got == truth, r


class TestStructureBuilder:
    def test_simple_tree(self):
        built = build_structure(
            S.root(S.call("mpi_init"), S.loop("l", S.call("mpi_barrier")))
        )
        kinds = [n.kind for n in built.cst.preorder()]
        assert kinds == ["root", CALL, LOOP, CALL]
        assert [n.gid for n in built.cst.preorder()] == [0, 1, 2, 3]

    def test_branch_with_else(self):
        built = build_structure(
            S.root(
                S.branch("b", S.call("mpi_send"),
                         orelse=(S.call("mpi_recv"),))
            )
        )
        branches = [n for n in built.cst.preorder() if n.kind == BRANCH]
        assert [b.branch_path for b in branches] == [0, 1]
        assert branches[0].ast_id == branches[1].ast_id

    def test_shared_labels_reuse_ids(self):
        built = build_structure(
            S.root(
                S.loop("outer", S.branch("b", S.call("mpi_send"))),
                S.branch("b", S.call("mpi_recv")),
            )
        )
        assert len(built.label_ids) == 2

    def test_unknown_intrinsic_rejected(self):
        with pytest.raises(StructureError):
            S.call("mpi_frobnicate")

    def test_unlabelled_loop_rejected(self):
        with pytest.raises(StructureError):
            build_structure(S.root(S.loop("", S.call("mpi_barrier"))))

    def test_non_root_top_rejected(self):
        with pytest.raises(StructureError):
            build_structure(S.loop("l", S.call("mpi_barrier")))


class TestTracing:
    SPEC = S.root(
        S.loop("steps",
               S.branch("right", S.call("mpi_send")),
               S.branch("left", S.call("mpi_recv"))),
        S.call("mpi_allreduce"),
    )

    @staticmethod
    def rank_main(tc):
        rank, size = tc.rank, tc.size
        for _ in tc.loop("steps", range(10)):
            with tc.branch_scope("right", rank < size - 1) as taken:
                if taken:
                    yield from tc.mpi("mpi_send", rank + 1, 1024, 0)
            with tc.branch_scope("left", rank > 0) as taken:
                if taken:
                    yield from tc.mpi("mpi_recv", rank - 1, 1024, 0)
            tc.compute(50)
        yield from tc.mpi("mpi_allreduce", 8)

    def test_replay_exact(self):
        rec = RecordingSink()
        run = run_python(self.rank_main, self.SPEC, 6, extra_sinks=[rec])
        assert_exact(run, rec, 6)

    def test_compression_effective(self):
        run = run_python(self.rank_main, self.SPEC, 6)
        # 10 iterations merge into single records per leaf.
        for v in run.compressor.ctt(1).preorder():
            if v.records:
                assert len(v.records) == 1

    def test_rank_groups_across_ranks(self):
        run = run_python(self.rank_main, self.SPEC, 6)
        merged = run.merge()
        sends = [
            v for v in merged.root.preorder()
            if v.kind == CALL and v.op == "MPI_Send"
        ]
        (send,) = sends
        (group,) = send.groups.values()
        assert group.ranks == [0, 1, 2, 3, 4]

    def test_trace_file_roundtrip(self, tmp_path):
        from repro.core import serialize
        from repro.core.decompress import decompress_merged_rank

        rec = RecordingSink()
        run = run_python(self.rank_main, self.SPEC, 4, extra_sinks=[rec])
        path = str(tmp_path / "py.cyp")
        run.save(path, gzip=True)
        back = serialize.load(path)
        for r in range(4):
            truth = [e.replay_tuple() for e in rec.events[r]]
            got = [e.call_tuple() for e in decompress_merged_rank(back, r)]
            assert got == truth


class TestValidation:
    def test_undeclared_label_raises(self):
        spec = S.root(S.call("mpi_barrier"))

        def rank_main(tc):
            for _ in tc.loop("mystery", range(2)):
                yield from tc.mpi("mpi_barrier")

        with pytest.raises(StructureError):
            run_python(rank_main, spec, 2)

    def test_undeclared_call_raises(self):
        spec = S.root(S.call("mpi_barrier"))

        def rank_main(tc):
            yield from tc.mpi("mpi_allreduce", 8)

        with pytest.raises(CompressionError):
            run_python(rank_main, spec, 2)

    def test_nonblocking_requests_supported(self):
        spec = S.root(
            S.loop("l",
                   S.call("mpi_irecv"), S.call("mpi_isend"),
                   S.call("mpi_waitall")),
        )

        def rank_main(tc):
            peer = 1 - tc.rank
            for _ in tc.loop("l", range(5)):
                r1 = yield from tc.mpi("mpi_irecv", peer, 256, 0)
                r2 = yield from tc.mpi("mpi_isend", peer, 256, 0)
                yield from tc.mpi("mpi_waitall", [r1, r2], 2)

        rec = RecordingSink()
        run = run_python(rank_main, spec, 2, extra_sinks=[rec])
        assert_exact(run, rec, 2)

    def test_compute_negative_rejected(self):
        spec = S.root(S.call("mpi_barrier"))

        def rank_main(tc):
            tc.compute(-1)
            yield from tc.mpi("mpi_barrier")

        with pytest.raises(ValueError):
            run_python(rank_main, spec, 1)
