"""Resilient pool executor: retry ladder, timeouts, serial fallback —
and byte-identity of recovered pipeline results."""

import time
import warnings

import pytest

from repro import obs
from repro.core import StreamMismatchError, run_cypress, serialize
from repro.core.inter import merge_all
from repro.core.respool import run_tasks
from repro.faults import FaultPlan, WorkerFault

SRC = """
func main() {
  var rank = mpi_comm_rank();
  var size = mpi_comm_size();
  for (var i = 0; i < 6; i = i + 1) {
    if (rank < size - 1) { mpi_send(rank + 1, 64, 1); }
    if (rank > 0) { mpi_recv(rank - 1, 64, 1); }
    mpi_allreduce(8);
  }
}
"""


def _double(x):
    return x * 2


def _fail_on_odd(x):
    if x % 2:
        raise ValueError(f"odd payload {x}")
    return x


class TestHappyPath:
    def test_results_in_payload_order(self):
        out = run_tasks(_double, list(range(6)), stage="intra", workers=3)
        assert out == [0, 2, 4, 6, 8, 10]

    def test_empty(self):
        assert run_tasks(_double, [], stage="intra", workers=2) == []


class TestInjectedWorkerFaults:
    @pytest.mark.parametrize("action", ["raise", "kill"])
    def test_single_fault_recovers_via_retry(self, action):
        plan = FaultPlan(worker_faults=(
            WorkerFault(stage="intra", task=1, action=action),
        ))
        with warnings.catch_warnings():
            # A recoverable retry must be warning-free: degradation
            # warnings are reserved for serial fallback.
            warnings.simplefilter("error")
            out = run_tasks(
                _double, [1, 2, 3], stage="intra", workers=3,
                retries=1, fault_plan=plan, backoff=0.01,
            )
        assert out == [2, 4, 6]

    def test_hang_is_killed_and_retried(self):
        plan = FaultPlan(
            worker_faults=(
                WorkerFault(stage="intra", task=0, action="hang"),
            ),
            hang_seconds=30.0,
        )
        t0 = time.monotonic()
        out = run_tasks(
            _double, [5, 6], stage="intra", workers=2,
            retries=1, timeout=1.0, fault_plan=plan, backoff=0.01,
        )
        assert out == [10, 12]
        # The hung worker was killed at the 1s deadline, not joined for
        # its full 30s sleep.
        assert time.monotonic() - t0 < 15.0

    def test_persistent_fault_falls_back_to_serial(self):
        plan = FaultPlan(worker_faults=(
            WorkerFault(stage="intra", task=0, action="kill", attempts=99),
        ))
        with pytest.warns(RuntimeWarning, match="re-executing serially"):
            out = run_tasks(
                _double, [7, 8], stage="intra", workers=2,
                retries=1, fault_plan=plan, backoff=0.01,
            )
        # The parent-side serial re-execution runs without injection.
        assert out == [14, 16]

    def test_deterministic_task_error_reraises_as_itself(self):
        with pytest.warns(RuntimeWarning, match="re-executing serially"):
            with pytest.raises(ValueError, match="odd payload 3"):
                run_tasks(
                    _fail_on_odd, [2, 3], stage="intra", workers=2,
                    retries=0, backoff=0.01,
                )

    def test_fault_counters_published(self):
        plan = FaultPlan(worker_faults=(
            WorkerFault(stage="intra", task=0, action="raise"),
        ))
        registry = obs.enable()
        try:
            run_tasks(
                _double, [1, 2], stage="intra", workers=2,
                retries=1, fault_plan=plan, backoff=0.01,
            )
        finally:
            obs.disable()
        assert registry.counters.get("faults.task_failures", 0) >= 1
        assert registry.counters.get("faults.retries", 0) >= 1
        assert registry.counters.get("faults.pool_fallbacks", 0) == 0


class TestPipelineRecoveryByteIdentity:
    """The acceptance bar: a worker crash mid-pipeline must not change a
    single output byte."""

    @pytest.fixture(scope="class")
    def healthy_bytes(self):
        run = run_cypress(SRC, nprocs=4)
        return serialize.dumps(run.merge())

    @pytest.mark.parametrize("action", ["raise", "kill"])
    def test_intra_worker_fault_recovers_identically(
        self, action, healthy_bytes
    ):
        plan = FaultPlan(worker_faults=(
            WorkerFault(stage="intra", task=0, action=action),
        ))
        run = run_cypress(
            SRC, nprocs=4, compress_workers=2, fault_plan=plan
        )
        assert not run.quarantine
        assert serialize.dumps(run.merge()) == healthy_bytes

    @pytest.mark.parametrize("action", ["raise", "kill"])
    def test_inter_worker_fault_recovers_identically(
        self, action, healthy_bytes
    ):
        plan = FaultPlan(worker_faults=(
            WorkerFault(stage="inter", task=0, action=action),
        ))
        run = run_cypress(SRC, nprocs=4)
        ctts = [run.compressor.ctt(r) for r in range(4)]
        merged = merge_all(
            ctts, workers=2, parallel_threshold=2, fault_plan=plan
        )
        assert serialize.dumps(merged) == healthy_bytes

    def test_inter_persistent_fault_serial_fallback_identical(
        self, healthy_bytes
    ):
        plan = FaultPlan(worker_faults=(
            WorkerFault(stage="inter", task=0, action="kill", attempts=99),
        ))
        run = run_cypress(SRC, nprocs=4)
        ctts = [run.compressor.ctt(r) for r in range(4)]
        with pytest.warns(RuntimeWarning, match="re-executing serially"):
            merged = merge_all(
                ctts, workers=2, parallel_threshold=2,
                retries=1, fault_plan=plan,
            )
        assert serialize.dumps(merged) == healthy_bytes

    def test_strict_mode_error_propagates_through_pool(self):
        plan = FaultPlan(seed=11, corrupt_ranks=(2,))
        with pytest.warns(RuntimeWarning, match="re-executing serially"):
            with pytest.raises(StreamMismatchError):
                run_cypress(
                    SRC, nprocs=4, compress_workers=2,
                    fault_plan=plan, strict=True,
                )
