"""Rank quarantine: lenient vs strict compression, survivor merges,
raw-capture replay, and the QuarantineReport."""

import json

import pytest

from repro.core import (
    MergeError,
    StreamMismatchError,
    run_cypress,
    serialize,
)
from repro.core.inter import merge_all
from repro.core.quarantine import QuarantinedRank, QuarantineReport
from repro.faults import CORRUPT_KINDS, FaultPlan

SRC = """
func main() {
  var rank = mpi_comm_rank();
  var size = mpi_comm_size();
  for (var i = 0; i < 6; i = i + 1) {
    if (rank < size - 1) { mpi_send(rank + 1, 64, 1); }
    if (rank > 0) { mpi_recv(rank - 1, 64, 1); }
    mpi_allreduce(8);
  }
}
"""
NPROCS = 4


def _corrupted_run(victims=(1,), kind="unbalanced", workers=None, **kw):
    plan = FaultPlan(seed=9, corrupt_ranks=victims, corrupt_kind=kind)
    return run_cypress(
        SRC, NPROCS, compress_workers=workers, fault_plan=plan, **kw
    )


class TestLenientMode:
    @pytest.mark.parametrize("kind", CORRUPT_KINDS + ("mixed",))
    def test_every_corruption_kind_quarantines(self, kind):
        run = _corrupted_run(kind=kind)
        assert run.quarantine.ranks() == [1]

    def test_named_victims_exactly(self):
        run = _corrupted_run(victims=(0, 3))
        assert run.quarantine.ranks() == [0, 3]
        assert run.quarantine.rank_set() == frozenset({0, 3})

    def test_survivor_merge_matches_healthy_subset(self):
        """Quarantining rank 1 must leave the other ranks' bytes exactly
        as a healthy run would merge them."""
        healthy = run_cypress(SRC, NPROCS)
        expect = merge_all(
            [healthy.compressor.ctt(r) for r in range(NPROCS) if r != 1]
        )
        run = _corrupted_run()
        merged = run.merge()
        assert merged.nranks_merged == NPROCS - 1
        assert serialize.dumps(merged) == serialize.dumps(expect)

    def test_parallel_lenient_matches_serial_lenient(self):
        serial = _corrupted_run(workers=None)
        parallel = _corrupted_run(workers=2)
        assert parallel.quarantine.ranks() == serial.quarantine.ranks()
        assert (
            serialize.dumps(parallel.merge())
            == serialize.dumps(serial.merge())
        )

    def test_healthy_ranks_replay_exactly(self):
        healthy = run_cypress(SRC, NPROCS)
        run = _corrupted_run()
        for rank in (0, 2, 3):
            got = [e.call_tuple() for e in run.replay(rank)]
            want = [e.call_tuple() for e in healthy.replay(rank)]
            assert got == want, f"rank {rank} diverged"

    def test_quarantined_rank_replays_from_raw_capture(self):
        # 'unbalanced' inserts a marker without touching events, so the
        # raw fallback must reproduce the victim's true call sequence.
        healthy = run_cypress(SRC, NPROCS)
        run = _corrupted_run(victims=(1,), kind="unbalanced")
        got = [e.call_tuple() for e in run.replay(1)]
        want = [e.call_tuple() for e in healthy.replay(1)]
        assert got == want

    def test_all_ranks_quarantined_merge_raises(self):
        run = _corrupted_run(victims=tuple(range(NPROCS)))
        assert len(run.quarantine) == NPROCS
        with pytest.raises(MergeError, match="every rank was quarantined"):
            run.merge()

    def test_fault_counter_published(self):
        from repro import obs

        registry = obs.enable()
        try:
            _corrupted_run()
        finally:
            obs.disable()
        assert registry.counters.get("faults.quarantined_ranks") == 1


class TestStrictMode:
    @pytest.mark.parametrize("workers", [None, 2])
    def test_strict_raises(self, workers):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            with pytest.raises(StreamMismatchError):
                _corrupted_run(workers=workers, strict=True)

    def test_strict_healthy_run_unaffected(self):
        run = run_cypress(SRC, NPROCS, strict=True)
        assert not run.quarantine
        assert run.merge().nranks_merged == NPROCS


class TestQuarantineReport:
    def test_item_fields(self):
        item = _corrupted_run().quarantine.get(1)
        assert item is not None
        assert item.stage == "intra"
        assert item.error
        assert item.events > 0
        assert item.raw_stream is not None
        assert len(item.raw_events()) == item.events

    def test_json_roundtrip(self):
        report = _corrupted_run(victims=(1, 2)).quarantine
        data = json.loads(report.to_json())
        assert data["quarantined_ranks"] == 2
        assert [i["rank"] for i in data["items"]] == [1, 2]
        assert all(i["raw_captured"] for i in data["items"])

    def test_from_json_full_roundtrip(self):
        # Satellite: the report must survive a to_json -> from_json trip
        # intact (the server persists quarantine state this way across
        # daemon restarts).  The raw stream is in-memory only, so the
        # round-tripped items carry raw_stream=None by contract.
        report = _corrupted_run(victims=(1, 3)).quarantine
        again = QuarantineReport.from_json(report.to_json())
        assert again.ranks() == report.ranks() == [1, 3]
        assert bool(again) and len(again) == 2
        for orig, back in zip(report, again):
            assert back.rank == orig.rank
            assert back.stage == orig.stage
            assert back.error == orig.error
            assert back.events == orig.events
            assert back.raw_stream is None
        # A second trip is byte-stable except the raw_captured flag,
        # which records the (now dropped) in-memory stream.
        twice = QuarantineReport.from_json(again.to_json())
        assert twice.to_json() == again.to_json()

    def test_from_json_empty_report(self):
        again = QuarantineReport.from_json(QuarantineReport().to_json())
        assert not again and again.ranks() == []

    def test_summary(self):
        assert QuarantineReport().summary() == "no ranks quarantined"
        report = QuarantineReport([
            QuarantinedRank(rank=3, stage="intra", error="x", events=0),
        ])
        assert "rank(s) quarantined: 3" in report.summary()

    def test_add_keeps_rank_order_and_absorb(self):
        a = QuarantineReport()
        a.add(QuarantinedRank(rank=5, stage="intra", error="e", events=0))
        a.add(QuarantinedRank(rank=2, stage="intra", error="e", events=0))
        b = QuarantineReport([
            QuarantinedRank(rank=4, stage="intra", error="e", events=0),
        ])
        a.absorb(b)
        assert a.ranks() == [2, 4, 5]
        assert a.get(9) is None
