"""FaultPlan determinism and the fault primitives themselves."""

import pytest

from repro.faults import (
    ACTION_HANG,
    ACTION_KILL,
    ACTION_RAISE,
    BOGUS_OP,
    BOGUS_OPCODE,
    CORRUPT_KINDS,
    NO_FAULTS,
    FaultPlan,
    WorkerFault,
    bitflip,
    corrupt_bytes,
    corrupt_stream,
    corrupt_streams,
    truncate,
)
from repro.mpisim.events import CommEvent
from repro.mpisim.pmpi import OP_EVENT, OP_LOOP_POP, OP_LOOP_PUSH


def _stream(nevents=4):
    out = [(OP_LOOP_PUSH, 7)]
    for i in range(nevents):
        out.append((OP_EVENT, CommEvent(op="MPI_Send", rank=0, seq=i, peer=1)))
    out.append((OP_LOOP_POP, 7))
    return out


class TestPlanDeterminism:
    def test_same_seed_same_stream(self):
        a = FaultPlan(seed=42).rng("stream", 3)
        b = FaultPlan(seed=42).rng("stream", 3)
        assert [a.random() for _ in range(8)] == [b.random() for _ in range(8)]

    def test_salt_separates_streams(self):
        plan = FaultPlan(seed=42)
        assert plan.rng("stream", 0).random() != plan.rng("stream", 1).random()
        assert plan.rng("bytes").random() != plan.rng("stream").random()

    def test_with_seed(self):
        plan = FaultPlan(seed=1, corrupt_ranks=(2,))
        other = plan.with_seed(9)
        assert other.seed == 9
        assert other.corrupt_ranks == (2,)
        assert plan.seed == 1  # frozen original untouched

    def test_corruption_is_reproducible(self):
        plan = FaultPlan(seed=5, corrupt_ranks=(0,))
        streams = {0: _stream(), 1: _stream()}
        once = corrupt_streams(streams, plan)
        twice = corrupt_streams(streams, plan)
        assert once[0] == twice[0]
        assert once[1] is streams[1]  # healthy streams shared, not copied


class TestWorkerFault:
    def test_fires_only_configured_attempts(self):
        plan = FaultPlan(worker_faults=(
            WorkerFault(stage="intra", task=2, action=ACTION_KILL, attempts=2),
        ))
        assert plan.worker_fault("intra", 2, 0) == ACTION_KILL
        assert plan.worker_fault("intra", 2, 1) == ACTION_KILL
        assert plan.worker_fault("intra", 2, 2) is None  # retry succeeds
        assert plan.worker_fault("intra", 1, 0) is None
        assert plan.worker_fault("inter", 2, 0) is None

    def test_wants_stage(self):
        plan = FaultPlan(worker_faults=(
            WorkerFault(stage="inter", task=0, action=ACTION_RAISE),
        ))
        assert plan.wants_stage("inter")
        assert not plan.wants_stage("intra")
        assert not NO_FAULTS.wants_stage("intra")

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkerFault(stage="intra", task=0, action="explode")
        with pytest.raises(ValueError):
            WorkerFault(stage="outer", task=0, action=ACTION_HANG)


class TestStreamCorruption:
    @pytest.mark.parametrize("kind", CORRUPT_KINDS + ("mixed",))
    def test_each_kind_changes_the_stream(self, kind):
        stream = _stream()
        rng = FaultPlan(seed=3).rng("k", kind)
        bad = corrupt_stream(stream, kind, rng)
        assert bad != stream
        assert stream == _stream()  # original untouched

    def test_opcode_kind_inserts_bogus_opcode(self):
        bad = corrupt_stream(_stream(), "opcode", FaultPlan(seed=1).rng())
        assert any(item[0] == BOGUS_OPCODE for item in bad)

    def test_unknown_op_rewrites_an_event(self):
        bad = corrupt_stream(_stream(), "unknown-op", FaultPlan(seed=1).rng())
        ops = [item[1].op for item in bad if item[0] == OP_EVENT]
        assert BOGUS_OP in ops

    def test_unknown_op_degrades_without_events(self):
        markers = [(OP_LOOP_PUSH, 7), (OP_LOOP_POP, 7)]
        bad = corrupt_stream(markers, "unknown-op", FaultPlan(seed=1).rng())
        assert any(item[0] == BOGUS_OPCODE for item in bad)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            corrupt_stream(_stream(), "gamma-ray", FaultPlan().rng())

    def test_missing_victims_ignored(self):
        plan = FaultPlan(seed=2, corrupt_ranks=(0, 99))
        out = corrupt_streams({0: _stream()}, plan)
        assert set(out) == {0}


class TestByteCorruption:
    def test_truncate_fraction(self):
        assert truncate(b"x" * 100, fraction=0.25) == b"x" * 25
        assert len(truncate(b"x" * 100, rng=FaultPlan(seed=1).rng())) < 100

    def test_truncate_tiny_input(self):
        assert truncate(b"a") == b""
        assert truncate(b"") == b""

    def test_bitflip_changes_exactly_one_bit(self):
        data = bytes(64)
        out = bitflip(data, FaultPlan(seed=4).rng())
        diff = [a ^ b for a, b in zip(data, out)]
        assert sum(bin(d).count("1") for d in diff) == 1

    def test_corrupt_bytes_applies_plan(self):
        plan = FaultPlan(seed=6, truncate_fraction=0.5, bitflips=2)
        out = corrupt_bytes(bytes(range(100)), plan)
        assert len(out) == 50
        assert out != bytes(range(50))
