"""Hypothesis strategies generating random *traceable, deadlock-free*
MiniMPI programs.

Deadlock freedom by construction:

* collectives appear only in rank-independent control flow;
* rank-dependent branches contain only self-messages and compute;
* point-to-point exchanges are symmetric pairings (XOR partner);
* helper functions are called from rank-independent positions, and any
  recursion is guarded (depth parameter) with communication before the
  recursive call (the paper's Fig. 8 shape).
"""

from __future__ import annotations

from hypothesis import strategies as st


@st.composite
def program(draw, allow_functions: bool = True, allow_subcomms: bool = False):
    helpers: list[str] = []
    used_helper_kinds: set[str] = set()
    lines: list[str] = []
    depth_budget = 3

    def emit_helper(kind: str) -> str:
        name = f"helper_{kind}"
        if kind in used_helper_kinds:
            return name
        used_helper_kinds.add(kind)
        if kind == "coll":
            helpers.append(
                "func helper_coll(n) {\n"
                "  mpi_allreduce(8 * n);\n"
                "  mpi_bcast(0, 16 * n);\n"
                "}"
            )
        elif kind == "selfmsg":
            helpers.append(
                "func helper_selfmsg(rank) {\n"
                "  mpi_send(rank, 24, 4);\n"
                "  mpi_recv(rank, 24, 4);\n"
                "}"
            )
        elif kind == "rec":
            # Guard-clause recursion, Fig. 8 style (tail form -> exact).
            helpers.append(
                "func helper_rec(n) {\n"
                "  if (n == 0) {\n"
                "    return;\n"
                "  } else {\n"
                "    mpi_bcast(0, 32);\n"
                "    helper_rec(n - 1);\n"
                "  }\n"
                "}"
            )
        return name

    def block(depth: int, indent: int, rank_dependent: bool) -> None:
        pad = "  " * indent
        for _ in range(draw(st.integers(1, 3))):
            choices = ["compute", "selfmsg"]
            if not rank_dependent:
                choices += ["coll", "exchange"]
                if allow_functions:
                    choices += ["call"]
                if allow_subcomms:
                    choices += ["subcomm"]
            if depth < depth_budget:
                choices += ["loop", "branch"]
            kind = draw(st.sampled_from(choices))
            if kind == "compute":
                lines.append(f"{pad}compute({draw(st.integers(1, 40))});")
            elif kind == "selfmsg":
                tag = draw(st.integers(0, 3))
                lines.append(f"{pad}mpi_send(rank, 16, {tag});")
                lines.append(f"{pad}mpi_recv(rank, 16, {tag});")
            elif kind == "coll":
                op = draw(st.sampled_from(
                    ["mpi_barrier()", "mpi_allreduce(16)", "mpi_bcast(0, 128)",
                     "mpi_reduce(0, 8)", "mpi_allgather(32)"]
                ))
                lines.append(f"{pad}{op};")
            elif kind == "exchange":
                nbytes = draw(st.integers(1, 8)) * 64
                lines.append(
                    f"{pad}r[0] = mpi_irecv(rank + 1 - 2 * (rank % 2), {nbytes}, 9);"
                )
                lines.append(
                    f"{pad}r[1] = mpi_isend(rank + 1 - 2 * (rank % 2), {nbytes}, 9);"
                )
                lines.append(f"{pad}mpi_waitall(r, 2);")
            elif kind == "call":
                hk = draw(st.sampled_from(["coll", "selfmsg", "rec"]))
                name = emit_helper(hk)
                arg = {
                    "coll": str(draw(st.integers(1, 4))),
                    "selfmsg": "rank",
                    "rec": str(draw(st.integers(0, 4))),
                }[hk]
                lines.append(f"{pad}{name}({arg});")
            elif kind == "subcomm":
                mod = draw(st.sampled_from([2, 4]))
                var = f"sc{len(lines)}"
                lines.append(
                    f"{pad}var {var} = mpi_comm_split(0, rank % {mod}, rank);"
                )
                lines.append(f"{pad}mpi_allreduce_on({var}, 64);")
            elif kind == "loop":
                count = draw(st.integers(0, 4))
                var = f"i{indent}_{len(lines)}"
                lines.append(
                    f"{pad}for (var {var} = 0; {var} < {count}; "
                    f"{var} = {var} + 1) {{"
                )
                block(depth + 1, indent + 1, rank_dependent)
                lines.append(f"{pad}}}")
            else:  # branch
                cond = draw(st.sampled_from(
                    ["rank % 2 == 0", "rank < size / 2", "rank == 0", "1", "0"]
                ))
                dependent = cond not in ("1", "0")
                has_else = draw(st.booleans())
                lines.append(f"{pad}if ({cond}) {{")
                block(depth + 1, indent + 1, rank_dependent or dependent)
                if has_else:
                    lines.append(f"{pad}}} else {{")
                    block(depth + 1, indent + 1, rank_dependent or dependent)
                lines.append(f"{pad}}}")

    block(0, 1, rank_dependent=False)
    body = "\n".join(lines)
    header = "\n".join(helpers)
    return (
        f"{header}\n"
        "func main() {\n"
        "  var rank = mpi_comm_rank();\n"
        "  var size = mpi_comm_size();\n"
        "  var r[2];\n"
        f"{body}\n"
        "}\n"
    )
