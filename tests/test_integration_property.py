"""Whole-pipeline property tests on richer random programs (functions,
guarded recursion, sub-communicators) — the flagship invariant plus
baseline losslessness, end to end."""

import sys

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

sys.path.insert(0, "tests")
from generators import program  # noqa: E402
from helpers import assert_replay_exact, run_traced, truth_signatures  # noqa: E402

SETTINGS = dict(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


class TestCypressProperty:
    @settings(**SETTINGS)
    @given(program(allow_functions=True), st.sampled_from([2, 4]))
    def test_programs_with_functions_replay_exactly(self, source, nprocs):
        _, rec, cyp, _ = run_traced(source, nprocs)
        assert_replay_exact(rec, cyp, nprocs)

    @settings(**SETTINGS)
    @given(program(allow_functions=True, allow_subcomms=True))
    def test_programs_with_subcomms_replay_exactly(self, source):
        nprocs = 4
        _, rec, cyp, _ = run_traced(source, nprocs)
        assert_replay_exact(rec, cyp, nprocs, merged=True)

    @settings(**SETTINGS)
    @given(program(allow_functions=True))
    def test_trace_file_roundtrip(self, source):
        from repro.core import serialize
        from repro.core.decompress import decompress_merged_rank
        from repro.core.inter import merge_all

        nprocs = 2
        _, rec, cyp, _ = run_traced(source, nprocs)
        merged = merge_all([cyp.ctt(r) for r in range(nprocs)])
        back = serialize.loads(serialize.dumps(merged))
        for rank in range(nprocs):
            truth = [e.replay_tuple() for e in rec.events.get(rank, [])]
            got = [e.call_tuple() for e in decompress_merged_rank(back, rank)]
            assert got == truth


class TestBaselineLosslessnessProperty:
    @settings(**SETTINGS)
    @given(program(allow_functions=True))
    def test_scalatrace_lossless_on_random_programs(self, source):
        from repro.baselines.rsd import expand
        from repro.baselines.scalatrace import (
            ScalaTraceCompressor,
            expand_rank,
            merge_all_queues,
        )
        from repro.driver import run_compiled
        from repro.mpisim.pmpi import MultiSink, RecordingSink
        from repro.static.instrument import compile_minimpi

        nprocs = 4
        compiled = compile_minimpi(source, cypress=False)
        rec = RecordingSink()
        stc = ScalaTraceCompressor()
        run_compiled(compiled, nprocs, tracer=MultiSink([rec, stc]),
                     max_steps=2_000_000)
        for rank in range(nprocs):
            assert expand(stc.queue(rank)) == truth_signatures(rec, rank)
        merged = merge_all_queues({r: stc.queue(r) for r in range(nprocs)})
        for rank in range(nprocs):
            assert expand_rank(merged, rank) == truth_signatures(rec, rank)

    @settings(**SETTINGS)
    @given(program(allow_functions=False))
    def test_scalatrace2_intra_lossless_on_random_programs(self, source):
        from repro.baselines.scalatrace2 import (
            ScalaTrace2Compressor,
            expand_intra,
        )
        from repro.driver import run_compiled
        from repro.mpisim.pmpi import MultiSink, RecordingSink
        from repro.static.instrument import compile_minimpi

        nprocs = 2
        compiled = compile_minimpi(source, cypress=False)
        rec = RecordingSink()
        st2 = ScalaTrace2Compressor()
        run_compiled(compiled, nprocs, tracer=MultiSink([rec, st2]),
                     max_steps=2_000_000)
        for rank in range(nprocs):
            assert expand_intra(st2.queue(rank)) == truth_signatures(rec, rank)


class TestSimMpiProperty:
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(program(allow_functions=True))
    def test_simmpi_replays_random_traces_without_deadlock(self, source):
        from repro.core.decompress import decompress_all
        from repro.core.inter import merge_all
        from repro.replay import predict

        nprocs = 4
        _, rec, cyp, result = run_traced(source, nprocs)
        merged = merge_all([cyp.ctt(r) for r in range(nprocs)])
        sim = predict(decompress_all(merged))
        assert sim.elapsed >= 0
