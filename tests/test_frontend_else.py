"""Frontend branch-with-else path tracing."""

from repro.frontend import S, run_python
from repro.mpisim import RecordingSink


def test_else_path_traced_and_replayed():
    spec = S.root(
        S.loop(
            "l",
            S.branch(
                "parity",
                S.call("mpi_send"), S.call("mpi_recv"),
                orelse=(S.call("mpi_recv"), S.call("mpi_send")),
            ),
        ),
    )

    def rank_main(tc):
        peer = 1 - tc.rank
        for i in tc.loop("l", range(8)):
            # Even ranks send-then-recv, odd ranks recv-then-send — the
            # classic deadlock-free pairing, expressed with one branch.
            with tc.branch_scope("parity", tc.rank % 2 == 0) as first:
                if first:
                    yield from tc.mpi("mpi_send", peer, 64, i % 2)
                    yield from tc.mpi("mpi_recv", peer, 64, i % 2)
                else:
                    yield from tc.mpi("mpi_recv", peer, 64, i % 2)
                    yield from tc.mpi("mpi_send", peer, 64, i % 2)

    rec = RecordingSink()
    run = run_python(rank_main, spec, 2, extra_sinks=[rec])
    for rank in range(2):
        truth = [e.replay_tuple() for e in rec.events[rank]]
        got = [e.call_tuple() for e in run.replay(rank)]
        assert got == truth
    # both paths populated: path 0 visited by rank 0, path 1 by rank 1
    merged = run.merge()
    branch_vertices = [
        v for v in merged.root.preorder() if v.kind == "branch"
    ]
    assert len(branch_vertices) == 2
    for v in branch_vertices:
        assert len(v.groups) == 1


def test_structure_reused_across_runs():
    from repro.frontend import build_structure

    spec = S.root(S.loop("l", S.call("mpi_barrier")))
    built = build_structure(spec)

    def rank_main(tc):
        for _ in tc.loop("l", range(3)):
            yield from tc.mpi("mpi_barrier")

    a = run_python(rank_main, built, 2)
    b = run_python(rank_main, built, 4)
    assert a.trace_bytes() > 0 and b.trace_bytes() > 0
