"""Signature hashing must be process-independent.

Merge shards cross process boundaries (pickle over the pool pipe), so
``Signature.__hash__`` cannot depend on the per-process
``PYTHONHASHSEED`` salt: a worker-computed hash must still index the
parent's intern table.  These tests pin the salt-free hash, the
pickle round-trip that ships it, and the resulting cross-process
intern hit rate of the parallel merge.
"""

import os
import pickle
import subprocess
import sys

sys.path.insert(0, "tests")
from helpers import run_traced  # noqa: E402

from repro.core.inter import InternTable, Signature, _stable_hash, merge_all  # noqa: E402

KEY = ("MPI_Send", 3, -100, 0, 0, 64, 0, 0, -1, False, (), -1)


class TestStableHash:
    def test_deterministic_in_process(self):
        assert _stable_hash(KEY) == _stable_hash(tuple(KEY))

    def test_pickle_preserves_hash(self):
        sig = Signature(KEY)
        clone = pickle.loads(pickle.dumps(sig))
        assert clone == sig
        assert clone._hash == sig._hash
        assert hash(clone) == hash(sig)

    def test_unpickled_signature_indexes_intern_table(self):
        table = InternTable()
        local = table.intern(KEY)
        shipped = pickle.loads(pickle.dumps(Signature(KEY)))
        assert table.canon(shipped) is local
        assert table.hits == 1

    def test_hash_identical_across_hash_seeds(self):
        # str/tuple hashing is salted per process; the signature hash
        # must not be.  Compute it under two different PYTHONHASHSEEDs
        # and compare with this process.
        code = (
            "from repro.core.inter import _stable_hash; "
            f"print(_stable_hash({KEY!r}))"
        )
        values = {_stable_hash(KEY)}
        for seed in ("0", "424242"):
            env = dict(os.environ, PYTHONHASHSEED=seed)
            env["PYTHONPATH"] = "src"
            out = subprocess.run(
                [sys.executable, "-c", code],
                capture_output=True, text=True, check=True,
                cwd=os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
                env=env,
            )
            values.add(int(out.stdout.strip()))
        assert len(values) == 1


class TestCrossProcessInternHitRate:
    def test_parallel_merge_interns_hit(self):
        # Ranks running the same SPMD loop produce identical signature
        # keys; after a parallel merge (shards hashed in workers, then
        # absorbed by the parent via pickled Signatures) the intern
        # table must register hits — zero hits would mean every worker
        # hash was discarded and re-derived, the bug the salt-free hash
        # removed.
        src = """
        func main() {
          var rank = mpi_comm_rank();
          var size = mpi_comm_size();
          for (var i = 0; i < 6; i = i + 1) {
            if (rank < size - 1) { mpi_send(rank + 1, 64, 1); }
            if (rank > 0) { mpi_recv(rank - 1, 64, 1); }
            mpi_allreduce(8);
          }
        }
        """
        _, _, cyp, _ = run_traced(src, 4)
        ctts = [cyp.ctt(r) for r in range(4)]
        serial = merge_all([pickle.loads(pickle.dumps(c)) for c in ctts])
        parallel = merge_all(
            ctts, workers=2, parallel_threshold=2
        )
        assert parallel.interns.hits > 0
        from repro.core import serialize

        assert serialize.dumps(parallel) == serialize.dumps(serial)
