"""Edge cases of the decompress/replay path: degenerate trees, the gzip
container, and the error paths a damaged trace file must hit."""

import sys

import pytest

sys.path.insert(0, "tests")
from helpers import assert_replay_exact, run_traced  # noqa: E402

from repro.core import serialize  # noqa: E402
from repro.core.decompress import (  # noqa: E402
    decompress_all,
    decompress_merged_rank,
    decompress_rank,
)
from repro.core.inter import merge_all  # noqa: E402


def _merged(source: str, nprocs: int):
    _, rec, cyp, _ = run_traced(source, nprocs)
    return rec, cyp, merge_all([cyp.ctt(r) for r in range(nprocs)])


class TestEmptyTree:
    """A program with no MPI calls compresses to an empty merged tree."""

    SOURCE = "func main() { var x = compute(5); }"

    def test_replay_is_empty(self):
        _, cyp, merged = _merged(self.SOURCE, 2)
        assert decompress_rank(cyp.ctt(0)) == []
        assert decompress_merged_rank(merged, 0) == []
        # No groups -> no members -> nothing to replay.
        assert decompress_all(merged) == {}

    def test_serialize_roundtrip(self):
        _, _, merged = _merged(self.SOURCE, 2)
        back = serialize.loads(serialize.dumps(merged))
        assert back.nranks_merged == 2
        assert decompress_merged_rank(back, 1) == []


class TestSingleRank:
    SOURCE = """
    func main() {
      for (var i = 0; i < 4; i = i + 1) {
        mpi_send(0, 32, 1);
        mpi_recv(0, 32, 1);
      }
      mpi_barrier();
    }
    """

    def test_merged_single_rank_replays_exactly(self):
        rec, cyp, merged = _merged(self.SOURCE, 1)
        assert merged.nranks_merged == 1
        assert_replay_exact(rec, cyp, 1, merged=True)

    def test_roundtrip_preserves_replay(self):
        rec, _, merged = _merged(self.SOURCE, 1)
        back = serialize.loads(serialize.dumps(merged))
        truth = [e.replay_tuple() for e in rec.events[0]]
        assert [e.call_tuple() for e in decompress_merged_rank(back, 0)] == truth


class TestGzipContainer:
    SOURCE = """
    func main() {
      for (var i = 0; i < 8; i = i + 1) { mpi_allreduce(64); }
    }
    """

    def test_gzip_file_loads_and_replays(self, tmp_path):
        _, _, merged = _merged(self.SOURCE, 3)
        plain, packed = tmp_path / "t.cyp", tmp_path / "t.cyp.gz"
        serialize.save(merged, str(plain), gzip=False)
        n = serialize.save(merged, str(packed), gzip=True)
        assert packed.read_bytes()[:2] == b"\x1f\x8b" and n > 0
        a = decompress_all(serialize.load(str(plain)))
        b = decompress_all(serialize.load(str(packed)))
        assert {r: [e.call_tuple() for e in ev] for r, ev in a.items()} == {
            r: [e.call_tuple() for e in ev] for r, ev in b.items()
        }

    def test_gzip_garbage_raises_value_error(self):
        with pytest.raises(ValueError):
            serialize.loads(b"\x1f\x8b" + b"\x00" * 16)


class TestTruncatedInput:
    SOURCE = """
    func main() {
      for (var i = 0; i < 5; i = i + 1) {
        mpi_send(mpi_comm_rank(), 128, 2);
        mpi_recv(mpi_comm_rank(), 128, 2);
        mpi_bcast(0, 256);
      }
    }
    """

    def test_every_truncation_raises_value_error(self):
        _, _, merged = _merged(self.SOURCE, 2)
        blob = serialize.dumps(merged)
        assert serialize.loads(blob).nranks_merged == 2  # sanity
        step = max(1, len(blob) // 40)
        for cut in range(0, len(blob) - 1, step):
            with pytest.raises(ValueError):
                serialize.loads(blob[:cut])

    def test_empty_input(self):
        with pytest.raises(ValueError):
            serialize.loads(b"")

    def test_bad_magic(self):
        with pytest.raises(ValueError, match="not a CYPRESS trace"):
            serialize.loads(b"NOPE" + b"\x00" * 32)

    def test_unsupported_version(self):
        _, _, merged = _merged("func main() { mpi_barrier(); }", 1)
        blob = bytearray(serialize.dumps(merged))
        blob[4] = 99  # version varint follows the 4-byte magic
        with pytest.raises(ValueError, match="unsupported trace version"):
            serialize.loads(bytes(blob))

    def test_trailing_corruption_detected(self):
        _, _, merged = _merged(self.SOURCE, 2)
        blob = serialize.dumps(merged)
        # Flipping payload bytes must never crash with a non-ValueError.
        for pos in range(len(blob) // 2, len(blob), 7):
            mutated = bytearray(blob)
            mutated[pos] ^= 0xFF
            try:
                serialize.loads(bytes(mutated))
            except ValueError:
                pass
