"""Trace export (text/CSV) tests."""

import csv
import io
import sys

sys.path.insert(0, "tests")
from helpers import run_traced  # noqa: E402

from repro.core import export  # noqa: E402
from repro.core.inter import merge_all  # noqa: E402

SRC = """
func main() {
  mpi_init();
  var rank = mpi_comm_rank();
  var size = mpi_comm_size();
  for (var i = 0; i < 5; i = i + 1) {
    compute(100);
    if (rank < size - 1) { mpi_send(rank + 1, 2048, 3); }
    if (rank > 0) { mpi_recv(rank - 1, 2048, 3); }
  }
  mpi_finalize();
}
"""


def merged_trace(nprocs=4):
    _, rec, cyp, _ = run_traced(SRC, nprocs)
    return rec, merge_all([cyp.ctt(r) for r in range(nprocs)])


class TestText:
    def test_one_line_per_event(self):
        rec, merged = merged_trace()
        text = export.to_text(merged)
        event_lines = [l for l in text.splitlines() if not l.startswith("#")]
        assert len(event_lines) == sum(len(v) for v in rec.events.values())

    def test_parameters_rendered(self):
        _, merged = merged_trace()
        text = export.to_text(merged)
        assert "MPI_Send" in text and "bytes=2048" in text and "tag=3" in text

    def test_rank_filter(self):
        _, merged = merged_trace()
        text = export.to_text(merged, ranks=[2])
        assert "# rank 2" in text
        assert "# rank 0" not in text

    def test_timestamps_monotone_per_rank(self):
        _, merged = merged_trace()
        text = export.to_text(merged, ranks=[1])
        times = [
            float(l.split()[0])
            for l in text.splitlines()
            if not l.startswith("#")
        ]
        assert times == sorted(times)
        assert times[-1] >= 400  # 4 visible compute(100) gaps

    def test_save(self, tmp_path):
        _, merged = merged_trace()
        path = str(tmp_path / "t.log")
        export.save_text(merged, path)
        assert "MPI_Finalize" in open(path).read()


class TestCsv:
    def test_parses_and_matches_truth(self):
        rec, merged = merged_trace()
        rows = list(csv.DictReader(io.StringIO(export.to_csv(merged))))
        assert len(rows) == sum(len(v) for v in rec.events.values())
        r0 = [r for r in rows if r["rank"] == "0"]
        truth = rec.events[0]
        assert [r["op"] for r in r0] == [e.op for e in truth]
        assert [int(r["nbytes"]) for r in r0] == [e.nbytes for e in truth]

    def test_header_fields(self):
        _, merged = merged_trace()
        reader = csv.reader(io.StringIO(export.to_csv(merged)))
        assert tuple(next(reader)) == export.CSV_FIELDS

    def test_save(self, tmp_path):
        _, merged = merged_trace(2)
        path = str(tmp_path / "t.csv")
        export.save_csv(merged, path, ranks=[0])
        rows = list(csv.DictReader(open(path)))
        assert all(r["rank"] == "0" for r in rows)


class TestReport:
    def test_summary_counts(self):
        from repro.analysis.report import summarize

        rec, merged = merged_trace()
        report = summarize(merged)
        assert report.nranks == 4
        assert report.total_events == sum(len(v) for v in rec.events.values())
        assert report.ops["MPI_Send"].calls == 15  # 3 senders x 5 iterations
        assert report.ops["MPI_Send"].nbytes == 15 * 2048

    def test_comm_fraction_bounded(self):
        from repro.analysis.report import summarize

        _, merged = merged_trace()
        report = summarize(merged)
        assert 0.0 < report.comm_fraction < 1.0

    def test_volume_split(self):
        from repro.analysis.report import summarize

        _, merged = merged_trace()
        report = summarize(merged)
        assert report.p2p_volume() == 2 * 15 * 2048  # sends + recvs
        assert report.collective_volume() == 0

    def test_format_renders(self):
        from repro.analysis.report import summarize

        _, merged = merged_trace()
        text = summarize(merged).format()
        assert "MPI_Send" in text and "ranks: 4" in text

    def test_cli_info_and_export(self, tmp_path, capsys):
        from repro.cli import main

        trace = str(tmp_path / "t.cyp")
        assert main(["trace", "ep", "-n", "4", "--scale", "0.5", "-o", trace]) == 0
        assert main(["info", trace]) == 0
        out = capsys.readouterr().out
        assert "MPI_Allreduce" in out
        csv_path = str(tmp_path / "t.csv")
        assert main(["export", trace, "-f", "csv", "-o", csv_path]) == 0
        assert "MPI_Allreduce" in open(csv_path).read()