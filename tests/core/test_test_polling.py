"""MPI_Test through the whole pipeline: tracing, compression, replay."""

import sys

sys.path.insert(0, "tests")
from helpers import assert_replay_exact, run_traced  # noqa: E402

from repro.static.cst import CALL  # noqa: E402

# A bounded polling pattern: rank 0 posts an irecv and tests a fixed
# number of times (some fail, eventually one succeeds after the final
# wait), while rank 1 sends late.
SRC = """
func main() {
  var rank = mpi_comm_rank();
  if (rank == 0) {
    var r = mpi_irecv(1, 64, 5);
    var done = 0;
    for (var i = 0; i < 4; i = i + 1) {
      if (done == 0) {
        done = mpi_test(r);
      }
      compute(5);
    }
    if (done == 0) {
      mpi_wait(r);
    }
  } else {
    compute(500);
    mpi_send(0, 64, 5);
  }
  mpi_barrier();
}
"""


class TestPolling:
    def test_replay_exact(self):
        _, rec, cyp, _ = run_traced(SRC, 2)
        assert_replay_exact(rec, cyp, 2, merged=True)

    def test_failed_and_successful_tests_separate_records(self):
        _, rec, cyp, _ = run_traced(SRC, 2)
        tests = [
            v for v in cyp.ctt(0).preorder()
            if v.kind == CALL and v.op == "MPI_Test"
        ]
        (leaf,) = tests
        outcomes = {r.key[10] for r in leaf.records}  # req_gids tuples
        # With rank 1 sending after 500us, all 4 polls fail (-> empty
        # req_gids) and the wait completes the request; or the last poll
        # may succeed.  Either way, failed polls group into one record.
        failed = [r for r in leaf.records if r.key[10] == ()]
        assert failed and failed[0].count >= 3

    def test_simmpi_replays_polling(self):
        from repro.core.decompress import decompress_all
        from repro.core.inter import merge_all
        from repro.replay import predict

        _, rec, cyp, _ = run_traced(SRC, 2)
        merged = merge_all([cyp.ctt(r) for r in range(2)])
        sim = predict(decompress_all(merged))
        assert sim.elapsed >= 500  # bounded by rank 1's compute
