"""Wildcard-receive completion merging under both record-matching
policies: the unbounded index (``window=None``, the default) and the
paper's last-record comparison (``window=1``).

A resolved wildcard receive re-enters the merge path late — after its
source is known — so its key must be built exactly like an eager
record's key, and the merge must work whichever policy is active."""

import sys

sys.path.insert(0, "tests")
from helpers import assert_replay_exact, run_traced  # noqa: E402

from repro.core.intra import CypressConfig  # noqa: E402

# Rank 0 posts wildcard irecvs in a loop; ranks 1 and 2 each send six
# same-shaped messages, so resolved records differ only by source rank.
SRC = """
func main() {
  var rank = mpi_comm_rank();
  if (rank == 0) {
    for (var i = 0; i < 12; i = i + 1) {
      var r = mpi_irecv(-1, 8, 0);
      mpi_wait(r);
    }
  } else {
    for (var i = 0; i < 6; i = i + 1) { mpi_send(0, 8, 0); }
  }
}
"""


def _irecv_records(cyp):
    for v in cyp.ctt(0).preorder():
        if v.op == "MPI_Irecv":
            return v.records
    raise AssertionError("no MPI_Irecv leaf")


class TestWildcardCompletionMerging:
    def test_unbounded_window_merges_per_source(self):
        _, rec, cyp, _ = run_traced(SRC, 3)
        records = _irecv_records(cyp)
        # Position-independent merging: one record per source rank.
        assert len(records) == 2
        assert sorted(r.count for r in records) == [6, 6]
        assert not any(r.pending for r in records)
        assert all(r.key[9] for r in records)  # wildcard flag preserved
        assert_replay_exact(rec, cyp, 3)
        assert_replay_exact(rec, cyp, 3, merged=True)

    def test_window_one_merges_only_adjacent(self):
        _, rec, cyp, _ = run_traced(SRC, 3, config=CypressConfig(window=1))
        records = _irecv_records(cyp)
        # Last-record-only comparison cannot collapse interleaved sources
        # to one record per source, but every occurrence must be kept...
        assert sum(r.count for r in records) == 12
        assert len(records) >= 2
        assert not any(r.pending for r in records)
        # ...and replay must stay exact, per-rank and merged.
        assert_replay_exact(rec, cyp, 3)
        assert_replay_exact(rec, cyp, 3, merged=True)

    def test_single_source_collapses_under_both_policies(self):
        src = """
        func main() {
          var rank = mpi_comm_rank();
          if (rank == 0) {
            for (var i = 0; i < 10; i = i + 1) {
              var r = mpi_irecv(-1, 8, 0);
              mpi_wait(r);
            }
          } else {
            for (var i = 0; i < 10; i = i + 1) { mpi_send(0, 8, 0); }
          }
        }
        """
        for config in (None, CypressConfig(window=1)):
            _, rec, cyp, _ = run_traced(src, 2, config=config)
            records = _irecv_records(cyp)
            # One source -> identical resolved keys are always adjacent,
            # so even window=1 folds them into a single record.
            assert len(records) == 1
            assert records[0].count == 10
            assert_replay_exact(rec, cyp, 2, merged=True)
