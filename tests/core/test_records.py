"""CompressedRecord unit tests."""

from repro.core.records import CompressedRecord, make_key
from repro.core.sequences import IntSequence


def key(**kw):
    base = dict(
        op="MPI_Send", peer_enc=("rel", 1), peer2_enc=("abs", -100),
        tag=0, tag2=0, nbytes=64, nbytes2=0, comm=0, root=-1,
        wildcard=False, req_gids=(),
    )
    base.update(kw)
    return make_key(**base)


class TestOccurrences:
    def test_add_occurrence_tracks_count_and_stats(self):
        rec = CompressedRecord(key=key())
        for i in range(5):
            rec.add_occurrence(i, duration_us=2.0, gap_us=1.0)
        assert rec.count == 5
        assert rec.occurrences.terms == [(0, 5, 1)]
        assert rec.duration.count == 5 and rec.duration.mean == 2.0
        assert rec.pre_gap.mean == 1.0

    def test_op_accessor(self):
        assert CompressedRecord(key=key()).op == "MPI_Send"


class TestMerge:
    def test_ordered_merge_appends_when_monotone(self):
        a = CompressedRecord(key=key())
        b = CompressedRecord(key=key())
        a.add_occurrence(0, 1.0, 0.0)
        a.add_occurrence(1, 1.0, 0.0)
        b.add_occurrence(2, 3.0, 0.0)
        a.merge_from(b)
        assert a.occurrences.to_list() == [0, 1, 2]
        assert a.duration.count == 3

    def test_ordered_merge_sorts_when_interleaved(self):
        # A late-resolving wildcard may carry an earlier visit index.
        a = CompressedRecord(key=key())
        b = CompressedRecord(key=key())
        for i in (1, 3, 5):
            a.add_occurrence(i, 1.0, 0.0)
        for i in (0, 2):
            b.add_occurrence(i, 1.0, 0.0)
        a.merge_from(b)
        assert a.occurrences.to_list() == [0, 1, 2, 3, 5]

    def test_payload_equal_ignores_timing(self):
        a = CompressedRecord(key=key())
        b = CompressedRecord(key=key())
        a.add_occurrence(0, 1.0, 0.0)
        b.add_occurrence(0, 99.0, 50.0)
        assert a.payload_equal(b)
        c = CompressedRecord(key=key(nbytes=128))
        c.add_occurrence(0, 1.0, 0.0)
        assert not a.payload_equal(c)


class TestCopy:
    def test_copy_independent(self):
        a = CompressedRecord(key=key())
        a.add_occurrence(0, 1.0, 0.5)
        b = a.copy()
        b.add_occurrence(1, 2.0, 0.5)
        assert a.count == 1 and b.count == 2
        assert a.duration.count == 1

    def test_approx_bytes_positive(self):
        a = CompressedRecord(key=key(req_gids=(1, 2, 3)))
        a.add_occurrence(0, 1.0, 0.0)
        assert a.approx_bytes() > 20
