"""Packed event codec: round-trip properties and wire-format hardening.

The packed encoding is the shm transport's wire format; the differential
harness proves byte-identity of the *compressed output*, while these
tests pin the codec itself: ``decode_stream(encode_stream(s).to_bytes())``
must reproduce the capture list exactly for every opcode, every sentinel
peer, every int64 boundary value, and empty/huge variable-length tuples.
"""

import struct

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import packed
from repro.mpisim.datatypes import ANY_SOURCE
from repro.mpisim.events import NO_PEER, CommEvent
from repro.mpisim.pmpi import (
    OP_BRANCH_ENTER,
    OP_BRANCH_EXIT,
    OP_EVENT,
    OP_FINALIZE,
    OP_LOOP_ITER,
    OP_LOOP_POP,
    OP_LOOP_PUSH,
    OP_RECURSE_ENTER,
    OP_RECURSE_EXIT,
    OP_REQ_COMPLETE,
)

SETTINGS = dict(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

I64_MIN = -(2**63)
I64_MAX = 2**63 - 1

i64 = st.integers(min_value=I64_MIN, max_value=I64_MAX)
# Peer fields mix realistic ranks with the codec's documented sentinels.
peers = st.one_of(st.sampled_from([NO_PEER, ANY_SOURCE, 0]), i64)
times = st.floats(allow_nan=False)  # NaN breaks tuple equality, not the codec
ops = st.sampled_from(
    ["MPI_Send", "MPI_Recv", "MPI_Isend", "MPI_Irecv", "MPI_Waitall",
     "MPI_Allreduce", "MPI_Comm_split", "Custom_Op_é"]
)
id_tuples = st.lists(i64, max_size=6).map(tuple)


@st.composite
def events(draw):
    return CommEvent(
        op=draw(ops),
        rank=draw(i64),
        seq=draw(i64),
        peer=draw(peers),
        peer2=draw(peers),
        tag=draw(i64),
        tag2=draw(i64),
        nbytes=draw(i64),
        nbytes2=draw(i64),
        comm=draw(i64),
        root=draw(i64),
        req=draw(i64),
        reqs=draw(id_tuples),
        wildcard=draw(st.booleans()),
        result_comm=draw(i64),
        time_start=draw(times),
        duration=draw(times),
        req_gids=draw(id_tuples),
    )


ast_ids = st.integers(min_value=I64_MIN, max_value=I64_MAX)
items = st.one_of(
    st.tuples(st.just(OP_EVENT), events()),
    st.tuples(st.just(OP_BRANCH_ENTER), ast_ids, ast_ids),
    st.tuples(st.just(OP_REQ_COMPLETE), i64, peers, i64, times),
    st.tuples(st.just(OP_FINALIZE)),
    st.tuples(
        st.sampled_from(
            [OP_LOOP_PUSH, OP_LOOP_ITER, OP_LOOP_POP, OP_BRANCH_EXIT,
             OP_RECURSE_ENTER, OP_RECURSE_EXIT]
        ),
        ast_ids,
    ),
)
streams = st.lists(items, max_size=60)


@settings(**SETTINGS)
@given(streams)
def test_round_trip_through_bytes(stream):
    blob = packed.encode_stream(stream).to_bytes()
    assert packed.is_packed(blob)
    assert packed.decode_stream(blob) == stream
    nevents = sum(1 for it in stream if it[0] == OP_EVENT)
    assert packed.event_count(blob) == nevents


@settings(**SETTINGS)
@given(streams)
def test_in_memory_columns_match_serialized(stream):
    # columns_of(PackedStream) skips the blob round-trip; both views must
    # decode identically.
    ps = packed.encode_stream(stream)
    assert packed.decode_stream(ps) == packed.decode_stream(ps.to_bytes())
    assert packed.event_count(ps) == packed.event_count(ps.to_bytes())


def _one(ev):
    return packed.decode_stream(
        packed.encode_stream([(OP_EVENT, ev)]).to_bytes()
    )[0][1]


class TestEdgeValues:
    def test_every_opcode_in_one_stream(self):
        stream = [
            (OP_LOOP_PUSH, 3),
            (OP_LOOP_ITER, 3),
            (OP_BRANCH_ENTER, 4, 1),
            (OP_EVENT, CommEvent("MPI_Send", 0, 0, peer=1, nbytes=8)),
            (OP_BRANCH_EXIT, 4),
            (OP_RECURSE_ENTER, 5),
            (OP_RECURSE_EXIT, 5),
            (OP_LOOP_POP, 3),
            (OP_REQ_COMPLETE, 7, 2, 64, 1.5),
            (OP_FINALIZE,),
        ]
        assert packed.decode_stream(packed.encode_stream(stream).to_bytes()) == stream

    def test_sentinel_peers(self):
        for peer in (NO_PEER, ANY_SOURCE):
            ev = CommEvent("MPI_Recv", 0, 1, peer=peer, wildcard=peer == ANY_SOURCE)
            assert _one(ev) == ev

    def test_int64_boundaries(self):
        ev = CommEvent(
            "MPI_Send", I64_MIN, I64_MAX, peer=I64_MIN, peer2=I64_MAX,
            tag=I64_MIN, tag2=I64_MAX, nbytes=I64_MAX, nbytes2=I64_MIN,
            comm=I64_MAX, root=I64_MIN, req=I64_MAX, result_comm=I64_MIN,
            reqs=(I64_MIN, I64_MAX), req_gids=(I64_MAX, I64_MIN),
        )
        assert _one(ev) == ev

    def test_empty_and_huge_tuples(self):
        empty = CommEvent("MPI_Wait", 0, 0, reqs=(), req_gids=())
        huge = CommEvent(
            "MPI_Waitall", 0, 1,
            reqs=tuple(range(10_000)),
            req_gids=tuple(range(0, -10_000, -1)),
        )
        decoded = packed.decode_stream(
            packed.encode_stream([(OP_EVENT, empty), (OP_EVENT, huge)]).to_bytes()
        )
        assert decoded[0][1] == empty
        assert decoded[1][1] == huge

    def test_op_table_interns(self):
        stream = [(OP_EVENT, CommEvent("MPI_Send", 0, i)) for i in range(5)]
        ps = packed.encode_stream(stream)
        assert ps.ops == ["MPI_Send"]


class TestMalformedInput:
    def test_unknown_opcode_rejected(self):
        with pytest.raises(packed.PackedStreamError):
            packed.encode_stream([(99, 1)])

    def test_overflow_is_encode_error(self):
        ev = CommEvent("MPI_Send", 0, 0, nbytes=2**63)
        with pytest.raises(packed.ENCODE_ERRORS):
            packed.encode_stream([(OP_EVENT, ev)])

    def test_non_integer_field_is_encode_error(self):
        ev = CommEvent("MPI_Send", 0, 0, tag="oops")
        with pytest.raises(packed.ENCODE_ERRORS):
            packed.encode_stream([(OP_EVENT, ev)])

    def test_bad_magic(self):
        with pytest.raises(packed.PackedStreamError):
            packed.decode_stream(b"NOPE" + b"\x00" * 64)

    def test_bad_version(self):
        blob = bytearray(packed.encode_stream([]).to_bytes())
        blob[4] = 200
        with pytest.raises(packed.PackedStreamError):
            packed.decode_stream(bytes(blob))

    def test_truncation(self):
        stream = [(OP_EVENT, CommEvent("MPI_Send", 0, 0, reqs=(1, 2, 3)))]
        blob = packed.encode_stream(stream).to_bytes()
        with pytest.raises(packed.PackedStreamError):
            packed.decode_stream(blob[:-1])

    def test_is_packed_negative(self):
        assert not packed.is_packed([(OP_FINALIZE,)])
        assert not packed.is_packed(b"xy")


def test_param_window_layout_is_injective_prefix():
    # The ingest fast path compares EVENT_PARAMS_OFF..EVENT_PARAMS_END
    # raw bytes to prove params equality.  Two events differing in any
    # key field must differ inside the window; ones differing only in
    # time/rank/seq/req must NOT (that is what makes the cache useful).
    base = dict(op="MPI_Send", rank=0, seq=0, peer=3, nbytes=64, tag=9)

    def window(ev):
        ps = packed.PackedStream()
        ps.append_event(ev)
        return bytes(ps.events[packed.EVENT_PARAMS_OFF:packed.EVENT_PARAMS_END])

    ref = window(CommEvent(**base))
    assert window(CommEvent(**{**base, "rank": 7, "seq": 5, "time_start": 2.0,
                               "duration": 1.0, "req": 11})) == ref
    for field, value in [
        ("peer", 4), ("nbytes", 65), ("tag", 10), ("peer2", 1), ("tag2", 1),
        ("nbytes2", 1), ("comm", 1), ("root", 0), ("result_comm", 0),
        ("wildcard", True), ("reqs", (1,)),
    ]:
        assert window(CommEvent(**{**base, field: value})) != ref

    assert struct.calcsize("<dd") == 16
    assert packed.EVENT_TIMES_OFF == packed.EVENT_PARAMS_END
