"""Binary trace format tests (varints, roundtrips, gzip)."""

import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

sys.path.insert(0, "tests")
from helpers import run_traced  # noqa: E402

from repro.core import serialize  # noqa: E402
from repro.core.decompress import decompress_merged_rank  # noqa: E402
from repro.core.inter import merge_all  # noqa: E402
from repro.core.serialize import ByteReader, ByteWriter  # noqa: E402

SRC = """
func main() {
  var rank = mpi_comm_rank();
  var size = mpi_comm_size();
  for (var i = 0; i < 8; i = i + 1) {
    if (rank < size - 1) { mpi_send(rank + 1, 128, 3); }
    if (rank > 0) { mpi_recv(rank - 1, 128, 3); }
    mpi_allreduce(16);
  }
}
"""


def make_merged(nprocs=6, timing_mode="meanstd"):
    from repro.core.intra import CypressConfig

    _, rec, cyp, _ = run_traced(
        SRC, nprocs, config=CypressConfig(timing_mode=timing_mode)
    )
    return rec, merge_all([cyp.ctt(r) for r in range(nprocs)])


class TestVarints:
    @settings(max_examples=200, deadline=None)
    @given(st.integers(0, 2**62))
    def test_unsigned_roundtrip(self, value):
        w = ByteWriter()
        w.u(value)
        assert ByteReader(w.bytes()).u() == value

    @settings(max_examples=200, deadline=None)
    @given(st.integers(-(2**60), 2**60))
    def test_signed_roundtrip(self, value):
        w = ByteWriter()
        w.z(value)
        assert ByteReader(w.bytes()).z() == value

    @settings(max_examples=50, deadline=None)
    @given(st.floats(allow_nan=False, allow_infinity=False))
    def test_float_roundtrip(self, value):
        w = ByteWriter()
        w.f(value)
        assert ByteReader(w.bytes()).f() == value

    @settings(max_examples=50, deadline=None)
    @given(st.text(max_size=100))
    def test_string_roundtrip(self, text):
        w = ByteWriter()
        w.s(text)
        assert ByteReader(w.bytes()).s() == text

    def test_negative_unsigned_rejected(self):
        with pytest.raises(ValueError):
            ByteWriter().u(-1)

    def test_truncated_input_rejected(self):
        w = ByteWriter()
        w.f(1.0)
        with pytest.raises(ValueError):
            ByteReader(w.bytes()[:4]).f()

    def test_small_values_one_byte(self):
        w = ByteWriter()
        w.u(127)
        assert len(w.bytes()) == 1


class TestRoundtrip:
    def test_replay_identical_after_roundtrip(self):
        rec, merged = make_merged()
        back = serialize.loads(serialize.dumps(merged))
        for rank in range(6):
            a = [e.call_tuple() for e in decompress_merged_rank(merged, rank)]
            b = [e.call_tuple() for e in decompress_merged_rank(back, rank)]
            assert a == b
            truth = [e.replay_tuple() for e in rec.events[rank]]
            assert b == truth

    def test_gzip_variant_roundtrips(self):
        rec, merged = make_merged()
        data = serialize.dumps(merged, gzip=True)
        assert data[:2] == b"\x1f\x8b"
        back = serialize.loads(data)
        assert back.nranks_merged == merged.nranks_merged

    def test_gzip_smaller_or_close(self):
        _, merged = make_merged()
        raw = serialize.dumps(merged)
        gz = serialize.dumps(merged, gzip=True)
        assert len(gz) < len(raw) * 1.2

    def test_histogram_timing_roundtrips(self):
        rec, merged = make_merged(timing_mode="hist")
        back = serialize.loads(serialize.dumps(merged))
        for v_a, v_b in zip(merged.root.preorder(), back.root.preorder()):
            for sig in v_a.groups:
                ga, gb = v_a.groups[sig], v_b.groups[sig]
                if ga.records:
                    for ra, rb in zip(ga.records, gb.records):
                        assert ra.duration.bins == rb.duration.bins

    def test_timing_statistics_survive(self):
        _, merged = make_merged()
        back = serialize.loads(serialize.dumps(merged))
        for v_a, v_b in zip(merged.root.preorder(), back.root.preorder()):
            for sig, ga in v_a.groups.items():
                gb = v_b.groups[sig]
                if ga.records:
                    for ra, rb in zip(ga.records, gb.records):
                        assert ra.duration.count == rb.duration.count
                        assert ra.duration.mean == pytest.approx(rb.duration.mean)

    def test_file_save_load(self, tmp_path):
        _, merged = make_merged()
        path = str(tmp_path / "t.cyp")
        n = serialize.save(merged, path, gzip=True)
        import os

        assert os.path.getsize(path) == n
        back = serialize.load(path)
        assert back.group_count() == merged.group_count()


class TestFormatGuards:
    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError, match="not a CYPRESS"):
            serialize.loads(b"XXXX12345")

    def test_bad_version_rejected(self):
        _, merged = make_merged(nprocs=2)
        data = bytearray(serialize.dumps(merged))
        data[4] = 99  # version varint byte
        with pytest.raises(ValueError, match="version"):
            serialize.loads(bytes(data))


class TestSizeScaling:
    def test_size_flat_in_iterations(self):
        """The headline property: compressed size must be (near) constant
        as the trace gets longer."""
        src = """
        func main() {
          for (var i = 0; i < n; i = i + 1) { mpi_allreduce(8); }
        }
        """
        sizes = []
        for n in (10, 100, 1000):
            _, rec, cyp, _ = run_traced(src, 4, defines={"n": n})
            merged = merge_all([cyp.ctt(r) for r in range(4)])
            sizes.append(len(serialize.dumps(merged)))
        assert sizes[2] <= sizes[0] + 8  # only the loop count varint grows
