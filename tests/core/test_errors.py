"""Error taxonomy: one CypressError root, compat aliases preserved."""

import pytest

from repro.core import (
    CompressionError,
    CypressError,
    MergeError,
    StreamMismatchError,
    TraceFormatError,
    serialize,
)


class TestTaxonomy:
    def test_common_root(self):
        for exc in (StreamMismatchError, MergeError, TraceFormatError):
            assert issubclass(exc, CypressError)

    def test_compression_error_alias(self):
        # Pre-taxonomy name; kept so existing `except CompressionError`
        # call sites keep working.
        assert CompressionError is StreamMismatchError

    def test_trace_format_error_is_valueerror_for_now(self):
        # One-release compatibility: serialize used to raise bare
        # ValueError for corrupt files.
        assert issubclass(TraceFormatError, ValueError)

    def test_merge_error_importable_from_inter(self):
        from repro.core.inter import MergeError as via_inter

        assert via_inter is MergeError


class TestRaisedTypes:
    def test_corrupt_trace_raises_trace_format_error(self):
        with pytest.raises(TraceFormatError):
            serialize.loads(b"not a trace at all")
        with pytest.raises(ValueError):  # the compat contract
            serialize.loads(b"CYTRgarbage-after-magic")

    def test_merge_error_on_empty(self):
        from repro.core.inter import merge_all

        with pytest.raises(ValueError):
            merge_all([])
