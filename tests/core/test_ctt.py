"""CTT structure tests: mirroring, branch groups, cursor helpers."""

from repro.core.ctt import CTT
from repro.static.cst import BRANCH, CALL, LOOP, ROOT
from repro.static.instrument import compile_minimpi

SRC = """
func main() {
  mpi_init();
  for (var i = 0; i < 3; i = i + 1) {
    if (i % 2 == 0) { mpi_send(0, 8, 0); } else { mpi_recv(0, 8, 0); }
    exchange();
    exchange();
  }
  mpi_finalize();
}
func exchange() {
  mpi_barrier();
}
"""


def build():
    compiled = compile_minimpi(SRC)
    return compiled, CTT(compiled.cst, rank=0)


class TestMirroring:
    def test_same_vertex_count_as_cst(self):
        compiled, ctt = build()
        assert ctt.vertex_count() == compiled.cst.size()

    def test_same_gids_preorder(self):
        compiled, ctt = build()
        assert [v.gid for v in ctt.preorder()] == [
            n.gid for n in compiled.cst.preorder()
        ]

    def test_payload_slots_by_kind(self):
        _, ctt = build()
        for v in ctt.preorder():
            assert (v.loop_counts is not None) == (v.kind == LOOP)
            assert (v.visits is not None) == (v.kind == BRANCH)
            assert (v.records is not None) == (v.kind == CALL)
            assert (v.record_index is not None) == (v.kind == CALL)

    def test_op_names_resolved(self):
        _, ctt = build()
        ops = {v.op for v in ctt.preorder() if v.kind == CALL}
        assert ops == {"MPI_Init", "MPI_Send", "MPI_Recv", "MPI_Barrier",
                       "MPI_Finalize"}

    def test_vertex_lookup_by_gid(self):
        _, ctt = build()
        for v in ctt.preorder():
            assert ctt.vertex(v.gid) is v


class TestBranchGroups:
    def test_paths_grouped(self):
        _, ctt = build()
        loop = next(v for v in ctt.preorder() if v.kind == LOOP)
        assert len(loop.branch_groups) == 1
        (group,) = loop.branch_groups
        assert sorted(group.paths) == [0, 1]
        assert group.last_index == group.first_index + 1

    def test_find_group_by_ast_id(self):
        _, ctt = build()
        loop = next(v for v in ctt.preorder() if v.kind == LOOP)
        (group,) = loop.branch_groups
        assert loop.find_group(group.ast_id, 0) is group
        assert loop.find_group(999999, 0) is None

    def test_root_has_no_groups(self):
        _, ctt = build()
        assert ctt.root.branch_groups == []


class TestFindChild:
    def test_ordered_search(self):
        _, ctt = build()
        loop = next(v for v in ctt.preorder() if v.kind == LOOP)
        # two inlined exchange() copies -> two barrier leaves
        barriers = [c for c in loop.children if c.op == "MPI_Barrier"]
        assert len(barriers) == 2
        first, idx1 = loop.find_child(
            lambda c: c.kind == CALL and c.op == "MPI_Barrier", 0
        )
        second, idx2 = loop.find_child(
            lambda c: c.kind == CALL and c.op == "MPI_Barrier", idx1 + 1
        )
        assert first is barriers[0] and second is barriers[1]

    def test_wraparound(self):
        _, ctt = build()
        loop = next(v for v in ctt.preorder() if v.kind == LOOP)
        nchildren = len(loop.children)
        # Start past the end: wraps to the beginning.
        found, idx = loop.find_child(
            lambda c: c.kind == CALL and c.op == "MPI_Barrier", nchildren - 1
        )
        assert found.op == "MPI_Barrier"

    def test_no_match(self):
        _, ctt = build()
        assert ctt.root.find_child(lambda c: c.kind == "nope", 0) is None


class TestSizeAccounting:
    def test_empty_ctt_small(self):
        _, ctt = build()
        assert 0 < ctt.approx_bytes() < 500

    def test_record_count_zero_before_tracing(self):
        _, ctt = build()
        assert ctt.record_count() == 0
