"""Crash-safe v5 container: checksummed sections, loud corruption,
salvage, legacy v4 reads, and atomic save."""

import os
import sys

import pytest

sys.path.insert(0, "tests")
from helpers import run_traced  # noqa: E402

from repro.core import TraceFormatError, serialize  # noqa: E402
from repro.core.inter import merge_all  # noqa: E402
from repro.core.serialize import ByteWriter  # noqa: E402
from repro.static.cst import CALL  # noqa: E402

SRC = """
func main() {
  var rank = mpi_comm_rank();
  var size = mpi_comm_size();
  for (var i = 0; i < 5; i = i + 1) {
    if (rank < size - 1) { mpi_send(rank + 1, 32, 2); }
    if (rank > 0) { mpi_recv(rank - 1, 32, 2); }
    mpi_barrier();
  }
}
"""


@pytest.fixture(scope="module")
def merged():
    _, _, cyp, _ = run_traced(SRC, 3)
    return merge_all([cyp.ctt(r) for r in range(3)])


@pytest.fixture(scope="module")
def blob(merged):
    return serialize.dumps(merged)


def _dump_v4(merged):
    """Re-create the legacy unframed container (magic, version 4, then
    one body: header, topology, payload) for the compat test."""
    vertices = list(merged.root.preorder())
    strings = {}
    for v in vertices:
        if v.kind != CALL:
            continue
        for s in (v.op, v.name):
            if s is not None and s not in strings:
                strings[s] = len(strings)
    w = ByteWriter()
    w.raw(serialize._MAGIC)
    w.u(4)
    w.u(merged.nranks_merged)
    w.u(len(strings))
    for text in strings:
        w.s(text)
    serialize._write_topology(w, vertices, strings)
    for v in vertices:
        serialize._write_vertex_payload(w, v, strings)
    return w.bytes()


class TestRoundTrip:
    def test_version_byte(self, blob):
        assert blob[:4] == b"CYTR"
        assert blob[4] == 6

    def test_redump_identity(self, blob):
        assert serialize.dumps(serialize.loads(blob)) == blob

    def test_no_salvage_info_on_clean_load(self, blob):
        assert serialize.loads(blob).salvage_info is None
        assert serialize.loads(blob, salvage=True).salvage_info[
            "complete"
        ] is True

    def test_chunked_dump_loads_identically(self, merged, blob):
        small = serialize.dumps(merged, chunk_bytes=64)
        assert len(small) > len(blob)  # more sections, more framing
        assert serialize.dumps(serialize.loads(small)) == blob

    def test_gzip_roundtrip(self, merged, blob):
        packed = serialize.dumps(merged, gzip=True)
        assert serialize.dumps(serialize.loads(packed)) == blob


class TestV4Compat:
    def test_v4_file_still_loads(self, merged, blob):
        legacy = _dump_v4(merged)
        assert legacy[4] == 4
        # v4 topology carried no branch ast ids, so its re-dump equals a
        # fresh v6 dump with them stripped (everything else intact).
        expect = serialize.loads(blob)
        for v in expect.root.preorder():
            v.ast_id = None
        assert serialize.dumps(serialize.loads(legacy)) == \
            serialize.dumps(expect)

    def test_unknown_version_rejected(self, blob):
        bad = bytearray(blob)
        bad[4] = 9
        with pytest.raises(TraceFormatError, match="version"):
            serialize.loads(bytes(bad))


class TestLoudCorruption:
    def test_every_single_bit_flip_is_detected(self, blob):
        for pos in range(len(blob)):
            for bit in range(8):
                bad = bytearray(blob)
                bad[pos] ^= 1 << bit
                with pytest.raises(ValueError):
                    serialize.loads(bytes(bad))

    def test_every_truncation_is_detected(self, blob):
        for cut in range(len(blob)):
            with pytest.raises(ValueError):
                serialize.loads(blob[:cut])

    def test_trailing_garbage_rejected(self, blob):
        with pytest.raises(TraceFormatError, match="trailing"):
            serialize.loads(blob + b"\x00")

    def test_gzip_corruption_detected(self, merged):
        packed = serialize.dumps(merged, gzip=True)
        with pytest.raises(ValueError):
            serialize.loads(packed[: len(packed) // 2])


class TestSalvage:
    def test_salvage_recovers_vertex_prefix(self, merged, blob):
        small = serialize.dumps(merged, chunk_bytes=64)
        nvertices = len(list(merged.root.preorder()))
        # Cutting progressively more of the tail recovers progressively
        # fewer vertices — never garbage, never an exception once the
        # header and topology survive.
        last = nvertices + 1
        recovered_some_partial = False
        for cut in range(len(small) - 1, len(small) // 2, -7):
            got = serialize.loads(small[:cut], salvage=True)
            info = got.salvage_info
            assert info["complete"] is False
            assert info["vertices_total"] == nvertices
            assert info["vertices_with_payload"] <= last
            last = info["vertices_with_payload"]
            if 0 < info["vertices_with_payload"] < nvertices:
                recovered_some_partial = True
                # The recovered prefix carries real payload.
                covered = list(got.root.preorder())[
                    : info["vertices_with_payload"]
                ]
                assert any(v.groups for v in covered)
        assert recovered_some_partial

    def test_salvaged_bytes_reload(self, merged):
        small = serialize.dumps(merged, chunk_bytes=64)
        got = serialize.loads(small[:-10], salvage=True)
        # A salvaged tree serializes to a fully valid (complete) file.
        again = serialize.loads(serialize.dumps(got))
        assert again.salvage_info is None

    def test_header_loss_is_fatal_even_in_salvage(self, blob):
        with pytest.raises(TraceFormatError):
            serialize.loads(blob[:6], salvage=True)

    def test_bitflip_in_tail_salvages(self, merged):
        small = serialize.dumps(merged, chunk_bytes=64)
        bad = bytearray(small)
        bad[-5] ^= 0x10
        with pytest.raises(ValueError):
            serialize.loads(bytes(bad))
        got = serialize.loads(bytes(bad), salvage=True)
        assert got.salvage_info["complete"] is False

    def test_gzip_truncation_salvages(self, merged):
        packed = serialize.dumps(merged, gzip=True)
        got = serialize.loads(packed[:-6], salvage=True)
        assert got.salvage_info is not None


class TestAtomicSave:
    def test_save_load_roundtrip(self, merged, blob, tmp_path):
        path = tmp_path / "trace.cyp"
        nbytes = serialize.save(merged, str(path))
        assert nbytes == len(blob)
        assert path.read_bytes() == blob
        assert serialize.dumps(serialize.load(str(path))) == blob
        assert not (tmp_path / "trace.cyp.tmp").exists()

    def test_failed_replace_preserves_existing_file(
        self, merged, blob, tmp_path, monkeypatch
    ):
        path = tmp_path / "trace.cyp"
        path.write_bytes(blob)

        def boom(src, dst):
            raise OSError("disk on fire")

        monkeypatch.setattr(os, "replace", boom)
        with pytest.raises(OSError, match="disk on fire"):
            serialize.save(merged, str(path))
        monkeypatch.undo()
        assert path.read_bytes() == blob  # original untouched
        assert not (tmp_path / "trace.cyp.tmp").exists()

    def test_load_salvage_flag(self, merged, tmp_path):
        small = serialize.dumps(merged, chunk_bytes=64)
        path = tmp_path / "cut.cyp"
        path.write_bytes(small[:-10])
        with pytest.raises(TraceFormatError):
            serialize.load(str(path))
        got = serialize.load(str(path), salvage=True)
        assert got.salvage_info["complete"] is False


class TestHeaderTruncationSalvage:
    """Satellite: files torn at or before the end of the 5-byte
    container header (magic + version) hold zero section bytes, so
    ``loads(salvage=True)`` returns a clean *empty* salvage result with
    ``salvage_info`` instead of raising — while strict mode, torn
    header *sections* (blob[:6], pinned above), and never-a-trace
    garbage all still fail loudly."""

    @pytest.mark.parametrize("n", [0, 1, 4, 5])
    def test_boundary_truncations_salvage_to_empty(self, blob, n):
        got = serialize.loads(blob[:n], salvage=True)
        info = got.salvage_info
        assert info["complete"] is False
        assert info["sections_recovered"] == 0
        assert info["vertices_with_payload"] == 0
        assert info["error"]
        assert got.nranks_merged == 0

    @pytest.mark.parametrize("n", [0, 1, 4, 5])
    def test_boundary_truncations_strict_still_raise(self, blob, n):
        with pytest.raises(TraceFormatError):
            serialize.loads(blob[:n])

    def test_garbage_stays_fatal_even_in_salvage(self):
        with pytest.raises(TraceFormatError):
            serialize.loads(b"???", salvage=True)
        with pytest.raises(TraceFormatError):
            serialize.loads(b"NOPE" + bytes(16), salvage=True)
