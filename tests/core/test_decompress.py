"""Decompression / replay tests, including the end-to-end property test:
random structured programs must replay exactly (sequence preservation)."""

import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

sys.path.insert(0, "tests")
from helpers import assert_replay_exact, run_traced  # noqa: E402

from repro.core.decompress import (  # noqa: E402
    DecompressionError,
    decompress_all,
    decompress_rank,
)
from repro.core.inter import merge_all  # noqa: E402


class TestBasics:
    def test_empty_program(self):
        _, rec, cyp, _ = run_traced("func main() { var x = 1; }", 2)
        assert decompress_rank(cyp.ctt(0)) == []

    def test_event_metadata_carried(self):
        _, rec, cyp, _ = run_traced(
            "func main() { compute(100); mpi_bcast(2, 4096); }", 4
        )
        (ev,) = decompress_rank(cyp.ctt(1))
        assert ev.op == "MPI_Bcast"
        assert ev.root == 2 and ev.nbytes == 4096
        assert ev.mean_gap >= 100
        assert ev.gid > 0

    def test_decompress_all_covers_ranks(self):
        _, rec, cyp, _ = run_traced("func main() { mpi_barrier(); }", 5)
        merged = merge_all([cyp.ctt(r) for r in range(5)])
        traces = decompress_all(merged)
        assert sorted(traces) == [0, 1, 2, 3, 4]
        assert all(len(t) == 1 for t in traces.values())

    def test_corrupt_payload_detected(self):
        _, rec, cyp, _ = run_traced(
            "func main() { for (var i = 0; i < 3; i = i + 1) { mpi_barrier(); } }",
            1,
        )
        ctt = cyp.ctt(0)
        # Sabotage: claim 5 iterations while records only cover 3.
        for v in ctt.preorder():
            if v.loop_counts is not None:
                v.loop_counts.terms = [(5, 1, 0)]
        with pytest.raises(DecompressionError):
            decompress_rank(ctt)


# ---------------------------------------------------------------------------
# Random-program property test.  Programs are generated from deadlock-free
# building blocks: collectives, symmetric neighbour exchanges, self-messages
# inside rank-dependent branches, nested data-dependent loops.
# ---------------------------------------------------------------------------


@st.composite
def random_program(draw):
    depth_budget = 3
    lines: list[str] = []

    def block(depth, indent):
        pad = "  " * indent
        n = draw(st.integers(1, 3))
        for _ in range(n):
            choices = ["coll", "selfmsg", "exchange", "compute"]
            if depth < depth_budget:
                choices += ["loop", "branch", "loop", "branch"]
            kind = draw(st.sampled_from(choices))
            if kind == "coll":
                op = draw(st.sampled_from(
                    ["mpi_barrier()", "mpi_allreduce(8)", "mpi_bcast(0, 64)",
                     "mpi_reduce(0, 16)", "mpi_alltoall(32)"]
                ))
                lines.append(f"{pad}{op};")
            elif kind == "selfmsg":
                nbytes = draw(st.integers(1, 3)) * 8
                tag = draw(st.integers(0, 2))
                lines.append(f"{pad}mpi_send(rank, {nbytes}, {tag});")
                lines.append(f"{pad}mpi_recv(rank, {nbytes}, {tag});")
            elif kind == "exchange":
                nbytes = draw(st.integers(1, 4)) * 16
                lines.append(f"{pad}r[0] = mpi_irecv(rank + 1 - 2 * (rank % 2), {nbytes}, 9);")
                lines.append(f"{pad}r[1] = mpi_isend(rank + 1 - 2 * (rank % 2), {nbytes}, 9);")
                lines.append(f"{pad}mpi_waitall(r, 2);")
            elif kind == "compute":
                lines.append(f"{pad}compute({draw(st.integers(1, 50))});")
            elif kind == "loop":
                count = draw(st.integers(0, 4))
                var = f"i{indent}_{len(lines)}"
                lines.append(
                    f"{pad}for (var {var} = 0; {var} < {count}; {var} = {var} + 1) {{"
                )
                block(depth + 1, indent + 1)
                lines.append(f"{pad}}}")
            else:  # branch
                cond = draw(st.sampled_from(
                    ["rank % 2 == 0", "rank < size / 2", "rank == 0", "1", "0"]
                ))
                has_else = draw(st.booleans())
                lines.append(f"{pad}if ({cond}) {{")
                # Rank-dependent branches must stay deadlock-free: only
                # self-messages / compute inside.
                sub = draw(st.integers(1, 2))
                for _ in range(sub):
                    what = draw(st.sampled_from(["selfmsg", "compute"]))
                    if what == "selfmsg":
                        lines.append(f"{pad}  mpi_send(rank, 8, 5);")
                        lines.append(f"{pad}  mpi_recv(rank, 8, 5);")
                    else:
                        lines.append(f"{pad}  compute(3);")
                if has_else:
                    lines.append(f"{pad}}} else {{")
                    lines.append(f"{pad}  compute(2);")
                lines.append(f"{pad}}}")

    block(0, 1)
    body = "\n".join(lines)
    return (
        "func main() {\n"
        "  var rank = mpi_comm_rank();\n"
        "  var size = mpi_comm_size();\n"
        "  var r[2];\n"
        f"{body}\n"
        "}\n"
    )


class TestSequencePreservationProperty:
    @settings(max_examples=40, deadline=None)
    @given(random_program(), st.sampled_from([2, 4, 6]))
    def test_random_program_replays_exactly(self, source, nprocs):
        _, rec, cyp, _ = run_traced(source, nprocs)
        assert_replay_exact(rec, cyp, nprocs)

    @settings(max_examples=20, deadline=None)
    @given(random_program(), st.sampled_from([2, 4]))
    def test_random_program_merged_replay_exact(self, source, nprocs):
        _, rec, cyp, _ = run_traced(source, nprocs)
        assert_replay_exact(rec, cyp, nprocs, merged=True)

    @settings(max_examples=15, deadline=None)
    @given(random_program())
    def test_serialization_preserves_replay(self, source):
        from repro.core import serialize
        from repro.core.decompress import decompress_merged_rank

        nprocs = 4
        _, rec, cyp, _ = run_traced(source, nprocs)
        merged = merge_all([cyp.ctt(r) for r in range(nprocs)])
        back = serialize.loads(serialize.dumps(merged, gzip=True))
        for rank in range(nprocs):
            truth = [e.replay_tuple() for e in rec.events.get(rank, [])]
            replay = [e.call_tuple() for e in decompress_merged_rank(back, rank)]
            assert replay == truth
