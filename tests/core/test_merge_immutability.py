"""Regression guards: inter-process merging must never mutate the
per-rank CTTs (groups copy records lazily on first stats merge)."""

import copy
import sys

sys.path.insert(0, "tests")
from helpers import run_traced  # noqa: E402

from repro.core.inter import merge_all  # noqa: E402

SRC = """
func main() {
  mpi_init();
  for (var i = 0; i < 8; i = i + 1) { mpi_allreduce(64); }
  mpi_finalize();
}
"""


def snapshot(ctt):
    out = []
    for v in ctt.preorder():
        if v.records:
            out.append(
                [
                    (r.key, r.occurrences.to_list(), r.duration.count,
                     r.duration.mean)
                    for r in v.records
                ]
            )
        if v.loop_counts is not None:
            out.append(v.loop_counts.to_list())
    return out


class TestMergeImmutability:
    def test_single_merge_leaves_sources_intact(self):
        _, rec, cyp, _ = run_traced(SRC, 6)
        ctts = [cyp.ctt(r) for r in range(6)]
        before = [snapshot(c) for c in ctts]
        merge_all(ctts)
        after = [snapshot(c) for c in ctts]
        assert before == after

    def test_repeated_merges_identical(self):
        _, rec, cyp, _ = run_traced(SRC, 4)
        ctts = [cyp.ctt(r) for r in range(4)]
        first = merge_all(ctts)
        second = merge_all(ctts)
        # Identical group structure and identical merged timing counts.
        for va, vb in zip(first.root.preorder(), second.root.preorder()):
            assert set(va.groups) == set(vb.groups)
            for sig in va.groups:
                ga, gb = va.groups[sig], vb.groups[sig]
                assert ga.ranks == gb.ranks
                if ga.records:
                    for ra, rb in zip(ga.records, gb.records):
                        assert ra.duration.count == rb.duration.count
                        assert ra.duration.mean == rb.duration.mean

    def test_merged_time_counts_scale_with_ranks(self):
        _, rec, cyp, _ = run_traced(SRC, 4)
        merged = merge_all([cyp.ctt(r) for r in range(4)])
        for v in merged.root.preorder():
            for g in v.groups.values():
                if g.records:
                    for r in g.records:
                        # 8 calls per rank x 4 ranks merged
                        if r.key[0] == "MPI_Allreduce":
                            assert r.duration.count == 32
