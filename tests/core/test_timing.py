"""Timing-statistics tests (Welford + histogram), checked against numpy."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.timing import HIST, MEANSTD, TimeStats

finite_times = st.lists(
    st.floats(0.0, 1e7, allow_nan=False, allow_infinity=False), min_size=1
)


class TestMeanStd:
    def test_single_value(self):
        ts = TimeStats()
        ts.add(5.0)
        assert ts.mean == 5.0 and ts.std == 0.0 and ts.count == 1

    def test_known_values(self):
        ts = TimeStats()
        for v in (2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0):
            ts.add(v)
        assert ts.mean == pytest.approx(5.0)
        assert ts.std == pytest.approx(np.std([2, 4, 4, 4, 5, 5, 7, 9], ddof=1))

    def test_min_max(self):
        ts = TimeStats()
        for v in (3.0, 1.0, 9.0):
            ts.add(v)
        assert (ts.minimum, ts.maximum) == (1.0, 9.0)

    @settings(max_examples=100, deadline=None)
    @given(finite_times)
    def test_matches_numpy(self, values):
        ts = TimeStats()
        for v in values:
            ts.add(v)
        assert ts.mean == pytest.approx(float(np.mean(values)), rel=1e-9, abs=1e-9)
        if len(values) > 1:
            assert ts.std == pytest.approx(
                float(np.std(values, ddof=1)), rel=1e-6, abs=1e-6
            )


class TestMerge:
    @settings(max_examples=100, deadline=None)
    @given(finite_times, finite_times)
    def test_merge_equals_concatenation(self, a, b):
        ta = TimeStats()
        tb = TimeStats()
        for v in a:
            ta.add(v)
        for v in b:
            tb.add(v)
        ta.merge(tb)
        both = a + b
        assert ta.count == len(both)
        assert ta.mean == pytest.approx(float(np.mean(both)), rel=1e-9, abs=1e-9)
        assert ta.minimum == min(both) and ta.maximum == max(both)

    def test_merge_into_empty(self):
        ta = TimeStats()
        tb = TimeStats()
        tb.add(3.0)
        ta.merge(tb)
        assert ta.count == 1 and ta.mean == 3.0

    def test_merge_empty_is_noop(self):
        ta = TimeStats()
        ta.add(1.0)
        ta.merge(TimeStats())
        assert ta.count == 1

    def test_mode_mismatch_rejected(self):
        with pytest.raises(ValueError):
            TimeStats(mode=MEANSTD).merge(TimeStats(mode=HIST))


class TestHistogram:
    def test_bins_populated(self):
        ts = TimeStats(mode=HIST)
        for v in (0.5, 1.5, 3.0, 100.0):
            ts.add(v)
        assert sum(ts.bins) == 4
        assert ts.bins[0] == 1  # < 1us

    def test_histogram_merge_adds_bins(self):
        a = TimeStats(mode=HIST)
        b = TimeStats(mode=HIST)
        a.add(2.0)
        b.add(2.0)
        a.merge(b)
        assert sum(a.bins) == 2

    def test_huge_values_clamped_to_last_bin(self):
        ts = TimeStats(mode=HIST)
        ts.add(1e12)
        assert ts.bins[-1] == 1

    def test_histogram_costs_more_bytes(self):
        a = TimeStats(mode=MEANSTD)
        b = TimeStats(mode=HIST)
        for v in (1.0, 10.0, 100.0, 1000.0):
            a.add(v)
            b.add(v)
        assert b.approx_bytes() > a.approx_bytes()

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            TimeStats(mode="exotic")


class TestCopy:
    def test_copy_independent(self):
        a = TimeStats(mode=HIST)
        a.add(5.0)
        b = a.copy()
        b.add(50.0)
        assert a.count == 1 and b.count == 2
        assert sum(a.bins) == 1
