"""Inter-process merge tests (paper §IV-B, Fig. 13)."""

import sys

import pytest

sys.path.insert(0, "tests")
from helpers import assert_replay_exact, run_traced  # noqa: E402

from repro.core.inter import MergedCTT, MergeError, merge_all  # noqa: E402
from repro.static.cst import CALL, LOOP  # noqa: E402

FIG5_RUNNABLE = """
func main() {
  var myid = mpi_comm_rank();
  for (var i = 0; i < k; i = i + 1) {
    if (myid % 2 == 0) {
      mpi_send(myid + 1, 32, 0);
    } else {
      mpi_recv(myid - 1, 32, 0);
    }
    bar();
  }
  if (myid % 2 == 0) {
    mpi_reduce(0, 4);
  } else {
    mpi_reduce(0, 4);
  }
}
func bar() {
  for (var kk = 0; kk < 3; kk = kk + 1) {
    mpi_bcast(0, 64);
  }
}
"""


def merged_for(src, nprocs, defines=None, schedule="tree"):
    _, rec, cyp, _ = run_traced(src, nprocs, defines=defines)
    merged = merge_all([cyp.ctt(r) for r in range(nprocs)], schedule=schedule)
    return rec, cyp, merged


class TestFigure13:
    def test_even_odd_processes_grouped(self):
        rec, cyp, merged = merged_for(FIG5_RUNNABLE, 8, defines={"k": 5})
        # The loop vertex: all ranks share iteration count k -> one group.
        loops = [v for v in merged.root.preorder() if v.kind == LOOP]
        outer = loops[0]
        assert len(outer.groups) == 1
        (group,) = outer.groups.values()
        assert group.ranks == list(range(8))
        assert group.counts.to_list() == [5]

    def test_send_leaf_groups_even_ranks(self):
        rec, cyp, merged = merged_for(FIG5_RUNNABLE, 8, defines={"k": 5})
        sends = [
            v for v in merged.root.preorder()
            if v.kind == CALL and v.op == "MPI_Send"
        ]
        (send,) = sends
        (group,) = send.groups.values()
        assert group.ranks == [0, 2, 4, 6]

    def test_merged_replay_exact_for_all_ranks(self):
        _, rec, cyp, _ = run_traced(FIG5_RUNNABLE, 8, defines={"k": 5})
        assert_replay_exact(rec, cyp, 8, merged=True)


class TestGrouping:
    def test_identical_ranks_collapse_to_one_group(self):
        src = """
        func main() {
          for (var i = 0; i < 10; i = i + 1) { mpi_allreduce(64); }
        }
        """
        _, _, merged = merged_for(src, 16)
        assert merged.group_count() == sum(
            len(v.groups) for v in merged.root.preorder()
        )
        for v in merged.root.preorder():
            if v.groups:
                assert len(v.groups) == 1

    def test_relative_ranks_unify_stencil(self):
        src = """
        func main() {
          var rank = mpi_comm_rank();
          var size = mpi_comm_size();
          if (rank < size - 1) { mpi_send(rank + 1, 16, 0); }
          if (rank > 0) { mpi_recv(rank - 1, 16, 0); }
        }
        """
        _, _, merged = merged_for(src, 16)
        sends = [
            v for v in merged.root.preorder()
            if v.kind == CALL and v.op == "MPI_Send"
        ]
        (send,) = sends
        assert len(send.groups) == 1  # ranks 0..14 share the (+1) record

    def test_absolute_ranks_fragment_groups(self):
        from repro.core.intra import CypressConfig

        src = """
        func main() {
          var rank = mpi_comm_rank();
          var size = mpi_comm_size();
          if (rank < size - 1) { mpi_send(rank + 1, 16, 0); }
          if (rank > 0) { mpi_recv(rank - 1, 16, 0); }
        }
        """
        _, rec, cyp, _ = run_traced(
            src, 8, config=CypressConfig(relative_ranks=False)
        )
        merged = merge_all([cyp.ctt(r) for r in range(8)])
        sends = [
            v for v in merged.root.preorder()
            if v.kind == CALL and v.op == "MPI_Send"
        ]
        (send,) = sends
        assert len(send.groups) == 7  # every sender distinct

    def test_rank_absent_from_call_path_ignored(self):
        # Paper: "If a process has not executed a certain call path in the
        # CTT, the call path is ignored for this process."
        src = """
        func main() {
          var rank = mpi_comm_rank();
          if (rank == 0) {
            mpi_send(1, 8, 0);
          }
          if (rank == 1) {
            mpi_recv(0, 8, 0);
          }
          mpi_barrier();
        }
        """
        _, rec, cyp, _ = run_traced(src, 4)
        merged = merge_all([cyp.ctt(r) for r in range(4)])
        sends = [
            v for v in merged.root.preorder()
            if v.kind == CALL and v.op == "MPI_Send"
        ]
        (send,) = sends
        (group,) = send.groups.values()
        assert group.ranks == [0]
        assert_replay_exact(rec, cyp, 4, merged=True)


class TestTimingMerge:
    def test_grouped_records_merge_time_stats(self):
        src = """
        func main() {
          for (var i = 0; i < 4; i = i + 1) { mpi_allreduce(8); }
        }
        """
        _, _, merged = merged_for(src, 8)
        leaf = [
            v for v in merged.root.preorder()
            if v.kind == CALL and v.op == "MPI_Allreduce"
        ][0]
        (group,) = leaf.groups.values()
        (record,) = group.records
        assert record.duration.count == 4 * 8  # 4 calls x 8 ranks


class TestSchedules:
    @pytest.mark.parametrize("schedule", ["tree", "fold"])
    def test_schedules_agree(self, schedule):
        _, _, merged = merged_for(
            FIG5_RUNNABLE, 8, defines={"k": 4}, schedule=schedule
        )
        assert merged.nranks_merged == 8

    def test_tree_and_fold_same_groups(self):
        _, cyp1, m_tree = merged_for(FIG5_RUNNABLE, 8, defines={"k": 4}, schedule="tree")
        _, cyp2, m_fold = merged_for(FIG5_RUNNABLE, 8, defines={"k": 4}, schedule="fold")
        for a, b in zip(m_tree.root.preorder(), m_fold.root.preorder()):
            assert set(a.groups.keys()) == set(b.groups.keys())
            for sig in a.groups:
                assert sorted(a.groups[sig].ranks) == sorted(b.groups[sig].ranks)

    def test_unknown_schedule_rejected(self):
        _, rec, cyp, _ = run_traced(FIG5_RUNNABLE, 2, defines={"k": 2})
        with pytest.raises(ValueError):
            merge_all([cyp.ctt(0), cyp.ctt(1)], schedule="magic")

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            merge_all([])


class TestStructuralMismatch:
    def test_different_programs_rejected(self):
        _, _, cyp_a, _ = run_traced("func main() { mpi_barrier(); }", 1)
        _, _, cyp_b, _ = run_traced(
            "func main() { mpi_barrier(); mpi_barrier(); }", 1
        )
        a = MergedCTT.from_rank(cyp_a.ctt(0))
        b = MergedCTT.from_rank(cyp_b.ctt(0))
        with pytest.raises(MergeError):
            a.absorb(b)


class TestComplexity:
    def test_merge_cost_linear_in_tree_not_trace(self):
        """The O(n) claim: doubling the iteration count (trace length) must
        not measurably grow merge input size — the CTT stays the same."""
        src = """
        func main() {
          for (var i = 0; i < n; i = i + 1) { mpi_allreduce(8); }
        }
        """
        _, _, cyp_small, _ = run_traced(src, 4, defines={"n": 10})
        _, _, cyp_big, _ = run_traced(src, 4, defines={"n": 1000})
        small = merge_all([cyp_small.ctt(r) for r in range(4)])
        big = merge_all([cyp_big.ctt(r) for r in range(4)])
        assert big.vertex_count() == small.vertex_count()
        assert big.group_count() == small.group_count()
