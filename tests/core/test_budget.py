"""Bounded-memory streaming compression (docs/INTERNALS.md §15).

The contract under test: with ``memory_budget_bytes`` set, the
compressor folds finished ranks into a partial merge and spills cold
ranks to disk, yet the merged container is **byte-identical** to the
unbudgeted pipeline under every merge schedule — across deterministic
bench shapes, random hypothesis programs, and explicit spill/evict/
reload round-trips.  Plus the two satellite bugfixes: the live-memory
estimator split and the config-keyed warm shm sessions.
"""

import sys
import types
import warnings

import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

sys.path.insert(0, "tests")
from generators import program  # noqa: E402

from repro.core import serialize
from repro.core.budget import (
    BudgetCounters,
    SpillFormatError,
    SpillStore,
    encode_rank_state,
)
from repro.core.errors import MergeError, StreamMismatchError
from repro.core.inter import merge_all
from repro.core.intra import (
    CypressConfig,
    IntraProcessCompressor,
    compress_streams,
)
from repro.driver import run_compiled
from repro.mpisim.pmpi import StreamCaptureSink
from repro.static.instrument import compile_minimpi
from repro.workloads import WORKLOADS

SETTINGS = dict(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

#: The four bench shapes of the budget-pressure matrix.
SHAPES = ("fig11", "cg", "farm", "amr")


def _capture(source, nprocs, defines=None):
    compiled = compile_minimpi(source)
    capture = StreamCaptureSink()
    run_compiled(compiled, nprocs, defines=defines, tracer=capture)
    return compiled, capture.streams


def _schedule_blobs(cst, streams, nprocs):
    """Reference container bytes per merge schedule, unbudgeted."""
    ref = compress_streams(cst, streams)
    ctts = [ref.ctt(r) for r in sorted(streams)]
    blobs = {}
    for sched in ("fold", "tree", "parallel"):
        if sched == "parallel":
            m = merge_all(ctts, schedule="tree", workers=2,
                          parallel_threshold=2, nranks=nprocs)
        else:
            m = merge_all(ctts, schedule=sched, nranks=nprocs)
        blobs[sched] = serialize.dumps(m)
    return blobs


def _interleaved_budget_compress(cst, streams, nprocs, budget=1, chunk=24):
    """Server-style ingest: round-robin small batches across ranks under
    a tiny budget, sealing each rank at end of stream.  Interleaving is
    what forces spill/evict/reload — several ranks are live at once and
    only the active one is unevictable."""
    comp = IntraProcessCompressor(
        cst, config=CypressConfig(memory_budget_bytes=budget)
    )
    comp.enable_incremental_fold(nranks=nprocs, domain=range(nprocs))
    cursors = {r: 0 for r in streams}
    live = sorted(streams)
    while live:
        for r in list(live):
            s = streams[r]
            if cursors[r] >= len(s):
                comp.seal_rank(r)
                live.remove(r)
                continue
            comp.ingest_stream(r, s[cursors[r]:cursors[r] + chunk])
            cursors[r] += chunk
    return comp


class TestBudgetPressure:
    """Eviction under a 1-byte budget on all four bench shapes."""

    @pytest.mark.parametrize("name", SHAPES)
    def test_pressure_byte_identical_with_real_spills(self, name):
        w = WORKLOADS[name]
        nprocs = 4 if 4 in w.valid_procs else min(w.valid_procs)
        compiled, streams = _capture(
            w.source, nprocs, w.defines(nprocs, 0.3)
        )
        blobs = _schedule_blobs(compiled.cst, streams, nprocs)
        comp = _interleaved_budget_compress(
            compiled.cst, streams, nprocs
        )
        try:
            budget_blob = serialize.dumps(comp.merged(nranks=nprocs))
            bc = comp.budget_counters
            # The 1-byte budget must actually drive eviction...
            assert bc.spills > 0 and bc.reloads > 0
            assert bc.folds == nprocs
            assert bc.spill_bytes > 0 and bc.reload_bytes > 0
            assert bc.peak_live_bytes > 0
            # ...and every rank's state must be released by the fold.
            assert not comp._states
            assert bc.live_bytes == 0
        finally:
            comp.close_spill()
        for sched, blob in blobs.items():
            assert budget_blob == blob, f"diverges from {sched} schedule"

    def test_batch_compress_streams_path(self):
        """The one-shot ``compress_streams`` budget path: every rank
        folds right after its stream, and the merged bytes match each
        unbudgeted schedule."""
        w = WORKLOADS["fig11"]
        compiled, streams = _capture(w.source, 4, w.defines(4, 0.3))
        blobs = _schedule_blobs(compiled.cst, streams, 4)
        comp = compress_streams(
            compiled.cst, streams,
            config=CypressConfig(memory_budget_bytes=1), nranks=4,
        )
        try:
            budget_blob = serialize.dumps(comp.merged(nranks=4))
            assert comp.budget_counters.folds == 4
            assert not comp._states
        finally:
            comp.close_spill()
        for sched, blob in blobs.items():
            assert budget_blob == blob, f"diverges from {sched} schedule"

    def test_metrics_exact_after_fold_and_spill(self):
        """intra.* counters must not drift when states are archived:
        folded/spilled ranks keep contributing their event/record
        totals."""
        w = WORKLOADS["cg"]
        compiled, streams = _capture(w.source, 4, w.defines(4, 0.3))
        ref = compress_streams(compiled.cst, streams)
        comp = _interleaved_budget_compress(compiled.cst, streams, 4)
        try:
            comp.merged(nranks=4)
            got = comp.metrics_counters()
            want = ref.metrics_counters()
            for key in ("intra.events", "intra.records", "intra.ranks"):
                assert got[key] == want[key], key
        finally:
            comp.close_spill()


class TestSpillReloadRoundTrip:
    """Explicit spill → evict → reload cycles are byte-exact."""

    @pytest.mark.parametrize("name", SHAPES)
    def test_mid_stream_spill_reload(self, name):
        w = WORKLOADS[name]
        nprocs = 4 if 4 in w.valid_procs else min(w.valid_procs)
        compiled, streams = _capture(
            w.source, nprocs, w.defines(nprocs, 0.3)
        )
        ref = compress_streams(compiled.cst, streams)
        comp = IntraProcessCompressor(
            compiled.cst, config=CypressConfig(memory_budget_bytes=1)
        )
        spilled = 0
        try:
            for rank in sorted(streams):
                s = streams[rank]
                comp.ingest_stream(rank, s[: len(s) // 2])
                spilled += comp._spill_rank(rank)  # may refuse (pending)
                # The reload happens implicitly on the next batch.
                comp.ingest_stream(rank, s[len(s) // 2:])
            for rank in sorted(streams):
                # The container codec wants a merged tree; a single-rank
                # merge is a faithful byte-level fingerprint of the CTT.
                got = serialize.dumps(
                    merge_all([comp.ctt(rank)], nranks=nprocs))
                want = serialize.dumps(
                    merge_all([ref.ctt(rank)], nranks=nprocs))
                assert got == want, \
                    f"rank {rank} diverged after spill/reload"
        finally:
            comp.close_spill()
        assert spilled > 0  # the cycle was actually exercised

    def test_state_access_reloads_spilled_rank(self):
        w = WORKLOADS["fig11"]
        compiled, streams = _capture(w.source, 4, w.defines(4, 0.3))
        comp = IntraProcessCompressor(
            compiled.cst, config=CypressConfig(memory_budget_bytes=1)
        )
        try:
            comp.ingest_stream(0, streams[0])
            assert comp._spill_rank(0)
            assert 0 not in comp._states
            assert comp.budget_counters.spills == 1
            comp.state(0)  # touch → reload
            assert 0 in comp._states
            assert comp.budget_counters.reloads == 1
        finally:
            comp.close_spill()


class TestBudgetProperty:
    """Random programs: budgeted interleaved ingest ==
    {fold, tree, parallel} merge of the unbudgeted pipeline."""

    @settings(**SETTINGS)
    @given(program(allow_functions=True), st.sampled_from([2, 4]),
           st.sampled_from([8, 24, 64]))
    def test_random_programs_byte_identical(self, source, nprocs, chunk):
        compiled, streams = _capture(source, nprocs)
        assume(streams)  # a program with no MPI events has no trace
        blobs = _schedule_blobs(compiled.cst, streams, nprocs)
        comp = _interleaved_budget_compress(
            compiled.cst, streams, nprocs, chunk=chunk
        )
        try:
            budget_blob = serialize.dumps(comp.merged(nranks=nprocs))
        finally:
            comp.close_spill()
        for sched, blob in blobs.items():
            assert budget_blob == blob, f"diverges from {sched} schedule"


class TestFoldSemantics:
    def test_folded_rank_state_is_gone(self):
        w = WORKLOADS["fig11"]
        compiled, streams = _capture(w.source, 4, w.defines(4, 0.3))
        comp = _interleaved_budget_compress(compiled.cst, streams, 4)
        try:
            with pytest.raises(StreamMismatchError, match="folded"):
                comp.state(0)
            comp.merged(nranks=4)
        finally:
            comp.close_spill()

    def test_merged_cannot_exclude_folded_rank(self):
        w = WORKLOADS["fig11"]
        compiled, streams = _capture(w.source, 4, w.defines(4, 0.3))
        comp = _interleaved_budget_compress(compiled.cst, streams, 4)
        try:
            with pytest.raises(MergeError, match="cannot be undone"):
                comp.merged(nranks=4, ranks=[1, 2, 3])  # 0 already folded
        finally:
            comp.close_spill()


class TestSpillStore:
    def test_torn_container_fails_loudly(self, tmp_path):
        store = SpillStore(str(tmp_path))
        store.spill(0, b"payload-bytes-here")
        path = store.path(0)
        data = open(path, "rb").read()
        with open(path, "wb") as fh:
            fh.write(data[: len(data) - 3])  # tear the tail
        with pytest.raises(SpillFormatError):
            store.load(0)
        store.close()

    def test_roundtrip_and_discard(self, tmp_path):
        store = SpillStore(str(tmp_path))
        store.spill(7, b"\x01\x02\x03")
        assert 7 in store and store.load(7) == b"\x01\x02\x03"
        store.discard(7)
        assert 7 not in store
        store.close()

    def test_pending_wildcards_are_unevictable(self):
        st_obj = types.SimpleNamespace(rank=3, pending={11: object()})
        with pytest.raises(ValueError, match="unevictable"):
            encode_rank_state(st_obj)

    def test_counters_metric_names(self):
        bc = BudgetCounters(spills=2, reloads=1, folds=4, live_bytes=10,
                            peak_live_bytes=99)
        m = bc.as_metrics()
        assert m["budget.spills"] == 2
        assert m["budget.peak_live_bytes"] == 99
        assert set(m) == {
            "budget.spills", "budget.spill_bytes", "budget.reloads",
            "budget.reload_bytes", "budget.folds", "budget.live_bytes",
            "budget.peak_live_bytes",
        }


class TestLiveBytesEstimator:
    """Satellite: ``approx_bytes`` measured *serialized* size but was
    used as the live-memory trigger.  The split must keep the old
    serialized estimate stable and make the live estimate strictly
    larger (boxed objects, caches, index dicts)."""

    def test_live_exceeds_serialized(self):
        w = WORKLOADS["cg"]
        compiled, streams = _capture(w.source, 4, w.defines(4, 0.3))
        comp = compress_streams(compiled.cst, streams)
        for rank in range(4):
            ctt = comp.ctt(rank)
            assert ctt.live_bytes() > ctt.serialized_bytes()
            # The alias keeps the historical name meaning "serialized".
            assert ctt.approx_bytes() == ctt.serialized_bytes()
            assert comp.live_bytes(rank) > comp.serialized_bytes(rank)
            assert comp.approx_bytes(rank) == comp.serialized_bytes(rank)

    def test_serialized_estimate_tracks_container(self):
        """The serialized estimate should be within an order of
        magnitude of the actual container size (it is an estimate, not
        an invoice)."""
        w = WORKLOADS["fig11"]
        compiled, streams = _capture(w.source, 4, w.defines(4, 0.3))
        comp = compress_streams(compiled.cst, streams)
        actual = len(serialize.dumps(
            merge_all([comp.ctt(0)], nranks=4)))
        est = comp.serialized_bytes(0)
        assert actual // 10 <= est <= actual * 10


class TestWarmSessionConfigKey:
    """Satellite regression: the warm-session cache key must include the
    config, so alternating configs on one CST never close and re-fork
    the shm pool."""

    def test_alternating_configs_reuse_sessions(self, monkeypatch):
        from repro.core import intra
        from repro.core.respool import fork_available

        if not fork_available():
            pytest.skip("fork start method unavailable")
        w = WORKLOADS["fig11"]
        compiled, streams = _capture(w.source, 4, w.defines(4, 0.3))
        intra.close_shared_sessions()
        creations = []
        orig_init = intra.ShmCompressSession.__init__

        def counting_init(self, *args, **kwargs):
            creations.append(kwargs.get("config") or (args[1] if len(args) > 1 else None))
            return orig_init(self, *args, **kwargs)

        monkeypatch.setattr(intra.ShmCompressSession, "__init__",
                            counting_init)
        cfg_a = CypressConfig()
        cfg_b = CypressConfig(window=64)
        blobs = {cfg_a: [], cfg_b: []}
        try:
            for cfg in (cfg_a, cfg_b, cfg_a, cfg_b, cfg_a, cfg_b):
                with warnings.catch_warnings():
                    # A silent fallback to pickle would vacuously pass.
                    warnings.simplefilter("error")
                    comp = compress_streams(
                        compiled.cst, streams, config=cfg, workers=2,
                        parallel_threshold=2, transport="shm",
                    )
                blobs[cfg].append(serialize.dumps(merge_all(
                    [comp.ctt(r) for r in range(4)], nranks=4)))
            # One pool per distinct config — zero re-forks across the
            # four alternations after the first pair.
            assert len(creations) == 2
            assert len(intra._shared_sessions) == 2
            sess_a = intra.shared_compress_session(compiled.cst, cfg_a)
            sess_b = intra.shared_compress_session(compiled.cst, cfg_b)
            assert sess_a is not sess_b
            assert len(creations) == 2  # lookups hit the cache too
            for per_cfg in blobs.values():
                assert all(b == per_cfg[0] for b in per_cfg)
        finally:
            intra.close_shared_sessions()
