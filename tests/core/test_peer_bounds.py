"""Boundary-rank peer decoding: a relative delta that decodes outside
``[0, nranks)`` must never alias onto a sentinel or a plausible rank.

Regression tests for the satellite fixes: ``decode_peer`` range
validation, strict replay (``nranks=``) raising ``DecompressionError``,
the merge-time absolute-encoding fallback, and the loud ``?N`` rendering
in flat exports.
"""

import sys

import pytest

sys.path.insert(0, "tests")
from helpers import run_traced  # noqa: E402

from repro.core import serialize  # noqa: E402
from repro.core.decompress import (  # noqa: E402
    DecompressionError,
    decompress_merged_rank,
    decompress_rank,
)
from repro.core.export import format_peer  # noqa: E402
from repro.core.inter import merge_all  # noqa: E402
from repro.core.ranks import (  # noqa: E402
    ABS,
    REL,
    decode_peer,
    rel_decode_bounds,
    try_decode_peer,
)
from repro.mpisim.datatypes import ANY_SOURCE  # noqa: E402
from repro.mpisim.events import NO_PEER  # noqa: E402

RING = """
func main() {
  for (var i = 0; i < 3; i = i + 1) {
    if (mpi_comm_rank() < mpi_comm_size() - 1) {
      mpi_send(mpi_comm_rank() + 1, 64, 7);
    }
    if (mpi_comm_rank() > 0) {
      mpi_recv(mpi_comm_rank() - 1, 64, 7);
    }
  }
  mpi_barrier();
}
"""


def _find_rel_leaf(ctt, op="MPI_Send"):
    """First CALL vertex whose record key carries a REL-encoded peer."""
    for vertex in ctt.vertices():
        if vertex.records:
            for record in vertex.records:
                if record.key is not None and record.key[0] == op:
                    if record.key[1][0] == REL:
                        return vertex, record
    raise AssertionError(f"no REL-encoded {op} record found")


def _corrupt_delta(record, delta):
    key = list(record.key)
    key[1] = (REL, delta)
    record.key = tuple(key)


class TestDecodePeer:
    def test_out_of_range_rel_raises_with_nranks(self):
        with pytest.raises(ValueError, match="outside"):
            decode_peer((REL, -1), 0, nranks=4)
        with pytest.raises(ValueError, match="outside"):
            decode_peer((REL, 1), 3, nranks=4)

    def test_in_range_rel_passes(self):
        assert decode_peer((REL, 1), 2, nranks=4) == 3
        assert decode_peer((REL, -1), 1, nranks=4) == 0

    def test_without_nranks_returns_raw(self):
        # Lenient mode: the caller sees the bogus value and decides.
        assert decode_peer((REL, -1), 0) == -1

    def test_sentinels_stay_abs(self):
        assert decode_peer((ABS, NO_PEER), 0, nranks=4) == NO_PEER
        assert decode_peer((ABS, ANY_SOURCE), 0, nranks=4) == ANY_SOURCE

    def test_try_decode_flags_overflow(self):
        assert try_decode_peer((REL, -1), 0, 4) == (-1, False)
        assert try_decode_peer((REL, 1), 3, 4) == (4, False)
        assert try_decode_peer((REL, 1), 2, 4) == (3, True)
        assert try_decode_peer((ABS, ANY_SOURCE), 0, 4) == (ANY_SOURCE, True)
        assert try_decode_peer((ABS, -7), 0, 4) == (-7, False)

    def test_negative_rel_decode_is_illegal_even_without_nranks(self):
        # Sentinels are stored absolute, so REL -> -1 can never be
        # ANY_SOURCE; flagged even when the rank count is unknown.
        assert try_decode_peer((REL, -2), 1, None) == (-1, False)

    def test_rel_decode_bounds(self):
        assert rel_decode_bounds(1, [0, 1, 2, 3]) == (1, 4)
        assert rel_decode_bounds(-1, [2, 5]) == (1, 4)


class TestStrictReplay:
    def test_corrupted_delta_raises_decompression_error(self):
        _, _, cyp, _ = run_traced(RING, 4)
        ctt = cyp.ctt(0)
        vertex, record = _find_rel_leaf(ctt)
        _corrupt_delta(record, 999)
        with pytest.raises(DecompressionError) as exc:
            decompress_rank(ctt, nranks=4)
        err = exc.value
        assert err.rank == 0
        assert err.gid == vertex.gid
        assert err.op == "MPI_Send"

    def test_boundary_rank_negative_decode_raises(self):
        # rank 0 + delta -1 -> -1: the ANY_SOURCE collision case.
        _, _, cyp, _ = run_traced(RING, 4)
        ctt = cyp.ctt(0)
        _, record = _find_rel_leaf(ctt)
        _corrupt_delta(record, -1)
        with pytest.raises(DecompressionError):
            decompress_rank(ctt, nranks=4)

    def test_lenient_replay_still_returns_raw_value(self):
        _, _, cyp, _ = run_traced(RING, 4)
        ctt = cyp.ctt(0)
        _, record = _find_rel_leaf(ctt)
        _corrupt_delta(record, -1)
        events = decompress_rank(ctt)  # no nranks: lenient
        assert any(e.peer == -1 and not e.wildcard for e in events)

    def test_healthy_replay_unchanged_by_strict_mode(self):
        _, rec, cyp, _ = run_traced(RING, 4)
        for rank in range(4):
            truth = [e.replay_tuple() for e in rec.events.get(rank, [])]
            strict = [
                e.call_tuple() for e in decompress_rank(cyp.ctt(rank), nranks=4)
            ]
            assert strict == truth


class TestMergeAbsFallback:
    def test_corrupted_rel_reencoded_abs_at_merge(self):
        _, _, cyp, _ = run_traced(RING, 4)
        ctts = [cyp.ctt(r) for r in range(4)]
        _, record = _find_rel_leaf(ctts[2])
        _corrupt_delta(record, 5)  # rank 2 + 5 = 7, outside [0, 4)
        merged = merge_all(ctts, nranks=4)
        found = None
        for vertex in merged.root.preorder():
            for group in vertex.groups.values():
                if group.records is None or 2 not in group.ranks:
                    continue
                for rec in group.records:
                    if rec.key[0] == "MPI_Send" and rec.key[1][0] == ABS:
                        found = rec.key[1]
        # The damaged delta travels as the rank-independent absolute
        # value instead of aliasing onto other ranks' plausible peers.
        assert found == (ABS, 7)

    def test_other_ranks_unaffected_by_victim(self):
        _, rec, cyp, _ = run_traced(RING, 4)
        ctts = [cyp.ctt(r) for r in range(4)]
        _, record = _find_rel_leaf(ctts[2])
        _corrupt_delta(record, 5)
        merged = merge_all(ctts, nranks=4)
        for rank in (0, 1, 3):
            truth = [e.replay_tuple() for e in rec.events.get(rank, [])]
            replay = [
                e.call_tuple()
                for e in decompress_merged_rank(merged, rank, nranks=4)
            ]
            assert replay == truth

    def test_healthy_merge_byte_identical_with_nranks(self):
        # The fallback is copy-on-write and never fires on healthy
        # traces — nranks= must not perturb the merged bytes.
        _, _, cyp, _ = run_traced(RING, 4)
        plain = merge_all([cyp.ctt(r) for r in range(4)])
        _, _, cyp2, _ = run_traced(RING, 4)
        checked = merge_all([cyp2.ctt(r) for r in range(4)], nranks=4)
        assert serialize.dumps(plain) == serialize.dumps(checked)

    def test_per_rank_ctt_not_mutated_by_fallback(self):
        _, _, cyp, _ = run_traced(RING, 4)
        ctts = [cyp.ctt(r) for r in range(4)]
        _, record = _find_rel_leaf(ctts[2])
        _corrupt_delta(record, 5)
        before = record.key
        merge_all(ctts, nranks=4)
        assert record.key == before  # copy-on-write repaired a copy


class TestEmitLeafError:
    def test_error_carries_replay_context(self):
        _, _, cyp, _ = run_traced(RING, 4)
        ctt = cyp.ctt(1)
        vertex, record = _find_rel_leaf(ctt, op="MPI_Send")
        # Drop the record's occurrences: the visit then has no covering
        # record and _emit_leaf must report exactly what it tried.
        record.occurrences.terms.clear()
        record.occurrences.length = 0
        with pytest.raises(DecompressionError) as exc:
            decompress_rank(ctt)
        err = exc.value
        assert err.rank == 1
        assert err.gid == vertex.gid
        assert err.op == "MPI_Send"
        assert err.visit >= 0
        assert record.key in err.candidates
        assert all(nxt is None or isinstance(nxt, int) for _i, nxt in err.cursors)
        assert isinstance(err, Exception) and "no record for visit" in str(err)


class TestFormatPeer:
    def test_no_peer_omitted(self):
        assert format_peer(NO_PEER) is None

    def test_any_source_star_only_on_wildcard(self):
        assert format_peer(ANY_SOURCE, wildcard=True) == "*"
        # -1 on a non-wildcard record is an overflow, not ANY_SOURCE.
        assert format_peer(-1, wildcard=False) == "?-1"

    def test_negative_overflow_loud(self):
        assert format_peer(-3) == "?-3"

    def test_normal_rank_plain(self):
        assert format_peer(5) == "5"
