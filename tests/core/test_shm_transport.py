"""Shared-memory parallel transport: byte-identity, warm sessions,
loud fallbacks, quarantine, and the no-fork serial degradation path.

Every transport (serial, fork+pipe pickle, shm rings) must produce a
byte-identical merged trace; failures must degrade *loudly* — a
``RuntimeWarning`` plus a ``faults.*`` counter — never silently.
"""

import dataclasses
import multiprocessing
import os
import signal
import time
import warnings

import pytest

from repro import obs
from repro.core import packed, serialize
from repro.core.inter import merge_all
from repro.core.intra import (
    ShmCompressSession,
    _resolve_transport,
    compress_streams,
)
from repro.core.respool import (
    ShmPool,
    ShmPoolError,
    fork_available,
    run_tasks,
)
from repro.driver import run_compiled
from repro.faults import FaultPlan, WorkerFault
from repro.mpisim.pmpi import OP_EVENT, StreamCaptureSink
from repro.static.instrument import compile_minimpi

SRC = """
func main() {
  var rank = mpi_comm_rank();
  var size = mpi_comm_size();
  for (var i = 0; i < 8; i = i + 1) {
    if (rank < size - 1) { mpi_send(rank + 1, 64, 1); }
    if (rank > 0) { mpi_recv(rank - 1, 64, 1); }
    mpi_allreduce(8);
  }
}
"""
NPROCS = 4


@pytest.fixture(scope="module")
def captured():
    compiled = compile_minimpi(SRC)
    capture = StreamCaptureSink()
    run_compiled(compiled, NPROCS, tracer=capture)
    return compiled, capture.streams


@pytest.fixture
def registry():
    reg = obs.enable()
    yield reg
    obs.disable()


def _blob(comp):
    return serialize.dumps(merge_all([comp.ctt(r) for r in comp.ranks()]))


def _die_mid_job(items):
    next(items)  # consume one item, then die mid-job (SIGKILL: no
    os.kill(os.getpid(), signal.SIGKILL)  # cleanup, no error frame)


class TestByteIdentity:
    def test_shm_equals_pickle_equals_serial(self, captured):
        compiled, streams = captured
        serial = _blob(compress_streams(compiled.cst, streams, workers=None))
        pickle_par = _blob(
            compress_streams(
                compiled.cst, streams, workers=2, transport="pickle"
            )
        )
        shm_par = _blob(
            compress_streams(compiled.cst, streams, workers=2, transport="shm")
        )
        assert shm_par == serial
        assert pickle_par == serial

    def test_packed_blob_input_rides_shm_unchanged(self, captured):
        # bytes input: the transport hand-off is a pure memcpy (no
        # encode step) and the output is still identical.
        compiled, streams = captured
        serial = _blob(compress_streams(compiled.cst, streams, workers=None))
        blobs = {
            r: packed.encode_stream(s).to_bytes() for r, s in streams.items()
        }
        shm_par = _blob(
            compress_streams(compiled.cst, blobs, workers=2, transport="shm")
        )
        assert shm_par == serial


class TestWarmSession:
    def test_session_reuse_stays_identical(self, captured):
        compiled, streams = captured
        serial = _blob(compress_streams(compiled.cst, streams, workers=None))
        blobs = {
            r: packed.encode_stream(s).to_bytes() for r, s in streams.items()
        }
        with ShmCompressSession(compiled.cst, workers=2) as session:
            for _ in range(3):  # same warm workers, repeated rounds
                assert _blob(session.compress(blobs)) == serial

    def test_empty_compress(self, captured):
        compiled, _ = captured
        with ShmCompressSession(compiled.cst, workers=2) as session:
            comp = session.compress({})
            assert comp.ranks() == []


class TestLoudFallback:
    def test_killed_worker_falls_back_with_warning_and_counter(
        self, captured, registry
    ):
        compiled, streams = captured
        serial = _blob(compress_streams(compiled.cst, streams, workers=None))
        plan = FaultPlan(
            worker_faults=(WorkerFault(stage="intra", task=0, action="kill"),)
        )
        with pytest.warns(RuntimeWarning, match="shm transport failed"):
            comp = compress_streams(
                compiled.cst, streams, workers=2,
                transport="shm", fault_plan=plan,
            )
        assert registry.counters.get("faults.transport_fallbacks", 0) == 1
        # The pickle fallback (with its own retry ladder) still delivers
        # the exact serial result.
        assert _blob(comp) == serial

    def test_shm_worker_sigkill_mid_job_raises_promptly(self):
        # Regression: a worker SIGKILLed mid-job while the parent sits
        # in ``run()`` leaves the ring counters frozen — the parent must
        # see the result pipe's EOF and raise ShmPoolError within
        # seconds, never wedge waiting on a ring a dead process owns.
        if not fork_available():
            pytest.skip("fork start method unavailable")
        pool = ShmPool(_die_mid_job, stage="intra", workers=1)
        try:
            jobs = [[(0, b"x" * 100), (1, b"y" * 100)]]
            t0 = time.monotonic()
            with pytest.raises(ShmPoolError, match="died"):
                pool.run(jobs, timeout=30.0)
            assert time.monotonic() - t0 < 20.0
        finally:
            pool.close()

    def test_auto_routes_intra_fault_plans_to_pickle(self):
        plan = FaultPlan(
            worker_faults=(WorkerFault(stage="intra", task=0, action="kill"),)
        )
        assert _resolve_transport("auto", plan) == "pickle"
        assert _resolve_transport("shm", plan) == "shm"
        with pytest.raises(ValueError):
            _resolve_transport("smh", None)


class TestQuarantineThroughShm:
    def test_corrupt_rank_is_quarantined_healthy_ranks_compress(self, captured):
        compiled, streams = captured
        # Structurally corrupt rank 1: rewrite one event's op so the
        # stream no longer matches the CST.  Still *encodable* — the
        # packed codec ships it fine; the mismatch surfaces at ingest
        # inside the shm worker, whose quarantine report must travel
        # home with the healthy results.
        bad = dict(streams)
        mutated = list(bad[1])
        for i, item in enumerate(mutated):
            if item[0] == OP_EVENT:
                mutated[i] = (
                    OP_EVENT, dataclasses.replace(item[1], op="MPI_Scan"),
                )
                break
        bad[1] = mutated
        comp = compress_streams(
            compiled.cst, bad, workers=2, transport="shm", strict=False
        )
        assert [q.rank for q in comp.quarantine] == [1]
        q = next(iter(comp.quarantine))
        assert q.stage == "intra"
        assert q.raw_stream is not None
        healthy = sorted(set(range(NPROCS)) - {1})
        assert comp.ranks() == healthy


class TestNoForkDegradation:
    """Platforms without the fork start method (satellite: spawn-only
    regression).  The pools must refuse to silently switch to spawn —
    loud serial execution instead."""

    def _no_fork(self, monkeypatch):
        monkeypatch.setattr(
            multiprocessing, "get_all_start_methods", lambda: ["spawn"]
        )

    def test_fork_available_and_transport_resolution(self, monkeypatch):
        assert fork_available()  # this CI platform forks
        self._no_fork(monkeypatch)
        assert not fork_available()
        assert _resolve_transport("auto", None) == "pickle"

    def test_run_tasks_serial_fallback_is_loud(self, monkeypatch, registry):
        self._no_fork(monkeypatch)
        with pytest.warns(RuntimeWarning, match="running serially"):
            out = run_tasks(_square, [1, 2, 3], stage="intra", workers=3)
        assert out == [1, 4, 9]
        assert registry.counters.get("faults.pool_fallbacks", 0) == 3

    def test_compress_streams_still_correct_without_fork(
        self, captured, monkeypatch, registry
    ):
        compiled, streams = captured
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            serial = _blob(
                compress_streams(compiled.cst, streams, workers=None)
            )
            self._no_fork(monkeypatch)
            degraded = _blob(
                compress_streams(compiled.cst, streams, workers=2)
            )
        assert degraded == serial
        assert registry.counters.get("faults.pool_fallbacks", 0) > 0


def _square(x):
    return x * x
