"""Intra-process compression tests: cursor mechanics, record merging,
loop/branch payloads, async requests, wildcards."""

import sys

import pytest

sys.path.insert(0, "tests")
from helpers import assert_replay_exact, run_traced  # noqa: E402

from repro.core.intra import CompressionError, CypressConfig  # noqa: E402
from repro.static.cst import BRANCH, CALL, LOOP  # noqa: E402


def leaf_records(compressor, rank, op):
    for v in compressor.ctt(rank).preorder():
        if v.kind == CALL and v.op == op:
            return v.records
    raise AssertionError(f"no leaf for {op}")


def vertices(compressor, rank, kind):
    return [v for v in compressor.ctt(rank).preorder() if v.kind == kind]


class TestLeafCompression:
    def test_identical_events_merge_to_one_record(self):
        src = """
        func main() {
          for (var i = 0; i < 50; i = i + 1) {
            mpi_send(0, 64, 1);
            mpi_recv(0, 64, 1);
          }
        }
        """
        _, rec, cyp, _ = run_traced(src, 1)
        records = leaf_records(cyp, 0, "MPI_Send")
        assert len(records) == 1
        assert records[0].count == 50

    def test_parameter_change_opens_new_record(self):
        src = """
        func main() {
          for (var i = 0; i < 10; i = i + 1) {
            mpi_send(0, 64 + 64 * (i / 5), 1);
            mpi_recv(0, 64 + 64 * (i / 5), 1);
          }
        }
        """
        _, rec, cyp, _ = run_traced(src, 1)
        records = leaf_records(cyp, 0, "MPI_Send")
        assert len(records) == 2
        assert [r.count for r in records] == [5, 5]

    def test_cyclic_sizes_merge_with_unbounded_window(self):
        # MG-style: sizes cycle per inner position; default config merges
        # each size into one record with a strided occurrence set.
        src = """
        func main() {
          for (var i = 0; i < 12; i = i + 1) {
            mpi_send(0, 64 * (1 + i % 3), 1);
            mpi_recv(0, 64 * (1 + i % 3), 1);
          }
        }
        """
        _, rec, cyp, _ = run_traced(src, 1)
        records = leaf_records(cyp, 0, "MPI_Send")
        assert len(records) == 3
        assert all(r.count == 4 for r in records)
        assert all(len(r.occurrences.terms) == 1 for r in records)

    def test_window_one_reproduces_paper_variant(self):
        src = """
        func main() {
          for (var i = 0; i < 12; i = i + 1) {
            mpi_send(0, 64 * (1 + i % 3), 1);
            mpi_recv(0, 64 * (1 + i % 3), 1);
          }
        }
        """
        _, rec, cyp, _ = run_traced(src, 1, config=CypressConfig(window=1))
        records = leaf_records(cyp, 0, "MPI_Send")
        assert len(records) == 12  # last-record-only comparison never matches
        assert_replay_exact(rec, cyp, 1)  # but replay is still exact

    def test_duration_stats_accumulate(self):
        src = "func main() { for (var i = 0; i < 5; i = i + 1) { mpi_barrier(); } }"
        _, _, cyp, _ = run_traced(src, 2)
        (record,) = leaf_records(cyp, 0, "MPI_Barrier")
        assert record.duration.count == 5
        assert record.duration.mean > 0

    def test_pre_gap_records_compute_time(self):
        src = "func main() { compute(500); mpi_barrier(); }"
        _, _, cyp, _ = run_traced(src, 1)
        (record,) = leaf_records(cyp, 0, "MPI_Barrier")
        assert record.pre_gap.mean >= 500


class TestLoopPayload:
    def test_simple_loop_count(self):
        src = "func main() { for (var i = 0; i < 7; i = i + 1) { mpi_barrier(); } }"
        _, _, cyp, _ = run_traced(src, 1)
        (loop,) = vertices(cyp, 0, LOOP)
        assert loop.loop_counts.to_list() == [7]

    def test_nested_triangular_counts_fig10(self):
        # Paper Fig. 10: inner counts form <0, 1, ..., k-1>.
        src = """
        func main() {
          for (var i = 0; i < 6; i = i + 1) {
            mpi_bcast(0, 8);
            for (var j = 0; j < i; j = j + 1) { mpi_barrier(); }
          }
        }
        """
        _, _, cyp, _ = run_traced(src, 1)
        outer, inner = vertices(cyp, 0, LOOP)
        assert outer.loop_counts.to_list() == [6]
        assert inner.loop_counts.to_list() == [0, 1, 2, 3, 4, 5]
        assert inner.loop_counts.terms == [(0, 6, 1)]  # stride-compressed

    def test_zero_iteration_loop_recorded(self):
        src = """
        func main() {
          for (var i = 0; i < 0; i = i + 1) { mpi_barrier(); }
          mpi_barrier();
        }
        """
        _, rec, cyp, _ = run_traced(src, 1)
        (loop,) = vertices(cyp, 0, LOOP)
        assert loop.loop_counts.to_list() == [0]
        assert_replay_exact(rec, cyp, 1)

    def test_while_loop_counts(self):
        src = """
        func main() {
          var x = 5;
          while (x > 0) { mpi_barrier(); x = x - 1; }
        }
        """
        _, _, cyp, _ = run_traced(src, 1)
        (loop,) = vertices(cyp, 0, LOOP)
        assert loop.loop_counts.to_list() == [5]


class TestBranchPayload:
    def test_alternating_branch_fig11(self):
        # Paper Fig. 11: taken at <0,8,2> / <1,9,2>.
        src = """
        func main() {
          for (var i = 0; i < 10; i = i + 1) {
            if (i % 2 == 0) { mpi_send(0, 8, 0); } else { mpi_recv(0, 8, 0); }
          }
        }
        """
        _, rec, cyp, _ = run_traced(src, 1)
        then_v, else_v = vertices(cyp, 0, BRANCH)
        assert then_v.visits.terms == [(0, 5, 2)]
        assert else_v.visits.terms == [(1, 5, 2)]
        assert_replay_exact(rec, cyp, 1)

    def test_branch_never_taken(self):
        src = """
        func main() {
          for (var i = 0; i < 4; i = i + 1) {
            if (i > 100) { mpi_send(0, 8, 0); }
            mpi_barrier();
          }
        }
        """
        _, rec, cyp, _ = run_traced(src, 1)
        (path0,) = vertices(cyp, 0, BRANCH)
        assert len(path0.visits) == 0
        assert_replay_exact(rec, cyp, 1)

    def test_rank_dependent_branches(self):
        src = """
        func main() {
          var rank = mpi_comm_rank();
          if (rank == 0) { mpi_send(1, 8, 0); } else { mpi_recv(0, 8, 0); }
        }
        """
        _, rec, cyp, _ = run_traced(src, 2)
        assert_replay_exact(rec, cyp, 2)


class TestAsyncRequests:
    def test_request_mapped_to_gid_fig12(self):
        src = """
        func main() {
          var peer = 1 - mpi_comm_rank();
          var r1 = mpi_isend(peer, 8, 0);
          var r2 = mpi_irecv(peer, 8, 0);
          mpi_wait(r1);
          mpi_wait(r2);
        }
        """
        _, rec, cyp, _ = run_traced(src, 2)
        ctt = cyp.ctt(0)
        by_op = {}
        for v in ctt.preorder():
            if v.kind == CALL:
                by_op.setdefault(v.op, []).append(v)
        wait1, wait2 = by_op["MPI_Wait"]
        (r1,) = wait1.records
        (r2,) = wait2.records
        assert r1.key[10] == (by_op["MPI_Isend"][0].gid,)
        assert r2.key[10] == (by_op["MPI_Irecv"][0].gid,)
        assert_replay_exact(rec, cyp, 2)

    def test_waitall_gid_tuple_stable_across_iterations(self):
        src = """
        func main() {
          var peer = 1 - mpi_comm_rank();
          var r[2];
          for (var i = 0; i < 20; i = i + 1) {
            r[0] = mpi_irecv(peer, 64, 0);
            r[1] = mpi_isend(peer, 64, 0);
            mpi_waitall(r, 2);
          }
        }
        """
        _, rec, cyp, _ = run_traced(src, 2)
        records = leaf_records(cyp, 0, "MPI_Waitall")
        assert len(records) == 1  # same GID tuple every iteration
        assert records[0].count == 20
        assert_replay_exact(rec, cyp, 2)


class TestWildcards:
    def test_blocking_wildcard_recv(self):
        src = """
        func main() {
          var rank = mpi_comm_rank();
          if (rank == 0) {
            mpi_recv(-1, 8, 0);
            mpi_recv(-1, 8, 0);
          } else {
            mpi_send(0, 8, 0);
          }
        }
        """
        _, rec, cyp, _ = run_traced(src, 3)
        records = leaf_records(cyp, 0, "MPI_Recv")
        assert all(r.key[9] for r in records)  # wildcard flag set
        assert_replay_exact(rec, cyp, 3)

    def test_nonblocking_wildcard_deferred_then_merged(self):
        src = """
        func main() {
          var rank = mpi_comm_rank();
          if (rank == 0) {
            for (var i = 0; i < 10; i = i + 1) {
              var r = mpi_irecv(-1, 8, 0);
              mpi_wait(r);
            }
          } else {
            for (var i = 0; i < 10; i = i + 1) { mpi_send(0, 8, 0); }
          }
        }
        """
        _, rec, cyp, _ = run_traced(src, 2)
        records = leaf_records(cyp, 0, "MPI_Irecv")
        # single source -> all ten resolved records merged into one
        assert len(records) == 1
        assert records[0].count == 10
        assert not records[0].pending
        assert_replay_exact(rec, cyp, 2)

    def test_unresolved_wildcard_at_finalize_raises(self):
        src = """
        func main() {
          var rank = mpi_comm_rank();
          if (rank == 0) {
            var r = mpi_irecv(-1, 8, 0);
            mpi_finalize();
            mpi_wait(r);
          } else {
            mpi_finalize();
            mpi_send(0, 8, 0);
          }
        }
        """
        with pytest.raises(CompressionError, match="wildcard"):
            run_traced(src, 2)


class TestInlinedCopies:
    def test_same_function_two_call_sites(self):
        src = """
        func main() {
          var peer = 1 - mpi_comm_rank();
          exchange(peer, 64);
          mpi_barrier();
          exchange(peer, 128);
        }
        func exchange(peer, n) {
          var r[2];
          r[0] = mpi_irecv(peer, n, 0);
          r[1] = mpi_isend(peer, n, 0);
          mpi_waitall(r, 2);
        }
        """
        _, rec, cyp, _ = run_traced(src, 2)
        assert_replay_exact(rec, cyp, 2)
        # two distinct Isend leaves (one per inlined copy)
        isends = [
            v for v in cyp.ctt(0).preorder()
            if v.kind == CALL and v.op == "MPI_Isend"
        ]
        assert len(isends) == 2
        assert {r.key[5] for v in isends for r in v.records} == {64, 128}

    def test_same_call_site_twice_in_loop_body(self):
        src = """
        func main() {
          var peer = 1 - mpi_comm_rank();
          for (var i = 0; i < 5; i = i + 1) {
            swap(peer);
            swap(peer);
          }
        }
        func swap(peer) {
          var r[2];
          r[0] = mpi_irecv(peer, 32, 0);
          r[1] = mpi_isend(peer, 32, 0);
          mpi_waitall(r, 2);
        }
        """
        _, rec, cyp, _ = run_traced(src, 2)
        assert_replay_exact(rec, cyp, 2)


class TestRecursion:
    def test_tail_recursion_exact(self):
        src = """
        func main() { chain(6); }
        func chain(n) {
          if (n == 0) {
            return;
          } else {
            mpi_bcast(0, 8);
            chain(n - 1);
          }
        }
        """
        _, rec, cyp, _ = run_traced(src, 2)
        assert_replay_exact(rec, cyp, 2)
        loops = vertices(cyp, 0, LOOP)
        assert len(loops) == 1
        # chain(6) enters the function 7 times (the n==0 guard iteration
        # performs no communication but is still an activation).
        assert loops[0].loop_counts.to_list() == [7]

    def test_nontail_recursion_preserves_multiset(self):
        # Paper Fig. 8 shape: Bcast before, Reduce after the recursive call.
        # The pseudo-loop linearisation approximates order but must keep
        # the exact multiset of events.
        src = """
        func main() { f(4); }
        func f(n) {
          if (n == 0) {
            return;
          } else {
            mpi_bcast(0, 8);
            f(n - 1);
            mpi_reduce(0, 8);
          }
        }
        """
        from collections import Counter

        from repro.core.decompress import decompress_rank

        _, rec, cyp, _ = run_traced(src, 2)
        replay = [e.call_tuple() for e in decompress_rank(cyp.ctt(0))]
        truth = [e.replay_tuple() for e in rec.events[0]]
        assert Counter(replay) == Counter(truth)
        assert len(replay) == len(truth) == 8  # 4 bcasts + 4 reduces


class TestErrors:
    def test_event_without_marker_context_raises(self):
        # Feed the compressor a mismatched stream directly.
        from repro.core.intra import IntraProcessCompressor
        from repro.mpisim.events import CommEvent
        from repro.static.instrument import compile_minimpi

        compiled = compile_minimpi("func main() { mpi_barrier(); }")
        comp = IntraProcessCompressor(compiled.cst)
        with pytest.raises(CompressionError):
            comp.on_event(0, CommEvent(op="MPI_Send", rank=0, seq=0))

    def test_unbalanced_loop_exit_raises(self):
        from repro.core.intra import IntraProcessCompressor
        from repro.static.instrument import compile_minimpi

        compiled = compile_minimpi(
            "func main() { for (;x;) { mpi_barrier(); } }"
        )
        comp = IntraProcessCompressor(compiled.cst)
        with pytest.raises(CompressionError):
            comp.on_loop_pop(0, 123)
