"""Fast-path equivalence (docs/INTERNALS.md §5).

The monomorphic dispatch tables, the per-leaf key-interning cache, the
batched stream ingestion and the parallel compression executor are pure
optimizations: every one must produce a serialized trace byte-identical
to the generic reference path (``CypressConfig(fastpath=False)``).
"""

import sys

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import serialize
from repro.core.ctt import CTT
from repro.core.inter import merge_all
from repro.core.intra import (
    CypressConfig,
    IntraProcessCompressor,
    compress_streams,
)
from repro.driver import run_compiled
from repro.mpisim.events import CommEvent
from repro.mpisim.pmpi import MultiSink, StreamCaptureSink
from repro.static.instrument import compile_minimpi
from repro.workloads import WORKLOADS

sys.path.insert(0, "tests")
from generators import program  # noqa: E402

SETTINGS = dict(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def _blob(compressor, nprocs: int) -> bytes:
    return serialize.dumps(
        merge_all([compressor.ctt(r) for r in range(nprocs)])
    )


def _assert_all_modes_identical(
    source: str,
    nprocs: int,
    window: int | None,
    defines: dict[str, int] | None = None,
    parallel: bool = True,
) -> bytes:
    """Trace once with the reference and fast-path compressors plus a
    stream capture attached; assert inline fast path, batched serial
    compression and the parallel executor all match the reference
    byte-for-byte."""
    compiled = compile_minimpi(source)
    ref = IntraProcessCompressor(
        compiled.cst, CypressConfig(window=window, fastpath=False)
    )
    fast = IntraProcessCompressor(compiled.cst, CypressConfig(window=window))
    capture = StreamCaptureSink()
    run_compiled(
        compiled, nprocs, defines=defines,
        tracer=MultiSink([ref, fast, capture]), max_steps=2_000_000,
    )
    expected = _blob(ref, nprocs)
    assert _blob(fast, nprocs) == expected, "inline fast path diverges"
    serial = compress_streams(
        compiled.cst, capture.streams,
        config=CypressConfig(window=window), workers=None,
    )
    assert _blob(serial, nprocs) == expected, "batched stream path diverges"
    if parallel:
        par = compress_streams(
            compiled.cst, capture.streams,
            config=CypressConfig(window=window), workers=2,
        )
        assert _blob(par, nprocs) == expected, "parallel executor diverges"
    return expected


class TestFastPathProperty:
    @settings(**SETTINGS)
    @given(program(allow_functions=True), st.sampled_from([None, 1, 4]))
    def test_random_programs_all_modes_byte_identical(self, source, window):
        # Parallel pool startup per example is too slow for hypothesis;
        # the pool is covered by the fixed-program tests below (the
        # executor runs the same ingest_stream the serial path does).
        _assert_all_modes_identical(source, nprocs=2, window=window,
                                    parallel=False)

    @settings(**SETTINGS)
    @given(program(allow_functions=True, allow_subcomms=True))
    def test_subcomm_programs_all_modes_byte_identical(self, source):
        _assert_all_modes_identical(source, nprocs=4, window=None,
                                    parallel=False)


class TestFastPathWorkloads:
    def test_wildcard_completions_byte_identical(self):
        # farm is the wildcard workload: the master posts
        # MPI_Irecv(ANY_SOURCE) and compression is deferred to request
        # completion — the pending path must behave identically in all
        # four modes (including the parallel pool, where the completed
        # peer travels in the OP_REQ_COMPLETE stream entry, not in the
        # shared event object).
        w = WORKLOADS["farm"]
        nprocs = 4
        w.check_procs(nprocs)
        for window in (None, 1):
            _assert_all_modes_identical(
                w.source, nprocs, window, defines=w.defines(nprocs, 1.0)
            )

    def test_recursion_byte_identical(self):
        # amr exercises the pseudo-loop recursion frames.
        w = WORKLOADS["amr"]
        nprocs = 9
        w.check_procs(nprocs)
        _assert_all_modes_identical(
            w.source, nprocs, None, defines=w.defines(nprocs, 1.0)
        )


INLINED_TWICE = """
func h(rank) {
  if (rank == 0) { mpi_bcast(0, 8); } else { mpi_bcast(0, 16); }
}
func main() {
  var rank = mpi_comm_rank();
  h(rank);
  h(rank);
}
"""


class TestFindGroupWrapAround:
    def test_wrap_around_between_inlined_copies(self):
        # Two inlined copies of h() give the root two branch groups with
        # the SAME ast_id at child indices (0,1) and (2,3); the ordered
        # wrap-around scan must pick by search position.
        compiled = compile_minimpi(INLINED_TWICE)
        root = CTT(compiled.cst, 0).root
        groups = root.group_by_ast_id
        assert len(groups) == 1
        ast_id = next(iter(groups))
        first, second = groups[ast_id]
        assert (first.first_index, second.first_index) == (0, 2)
        # Forward scan from the start finds the first copy...
        assert root.find_group(ast_id, 0) is first
        # ...after the first copy executed, the second...
        assert root.find_group(ast_id, first.last_index + 1) is second
        # ...and past the last copy it wraps to the first again.
        assert root.find_group(ast_id, second.last_index + 1) is first
        assert root.find_group(ast_id, len(root.children)) is first
        assert root.find_group(ast_id + 999, 0) is None

    def test_generic_and_monomorphic_lookups_agree(self):
        from repro.static.cst import BRANCH
        compiled = compile_minimpi(INLINED_TWICE)
        root = CTT(compiled.cst, 0).root
        ast_id = next(iter(root.group_by_ast_id))
        groups = root.group_by_ast_id[ast_id]
        # The cursor only ever searches from group boundaries (the search
        # position sits just past the previously executed structure), so
        # agreement is asserted at boundary starts.
        boundaries = {0, len(root.children)} | {
            g.last_index + 1 for g in groups
        }
        for start in sorted(boundaries):
            hit = root.find_child(
                lambda c: c.kind == BRANCH and c.ast_id == ast_id, start
            )
            group = root.find_group(ast_id, start)
            assert hit is not None and group is not None
            # The generic scan lands on a vertex inside the group the
            # monomorphic lookup returns (the group spans both paths).
            assert hit[0] in group.paths.values()


LOOP_SEND = """
func main() {
  for (var i = 0; i < n; i = i + 1) {
    mpi_send(1, 8, 7);
  }
}
"""


def _leaf(compressor, rank=0):
    return next(
        v for v in compressor.ctt(rank).root.preorder() if v.records is not None
    )


def _drive(compressor, loop_id, payloads, rank=0):
    compressor.on_loop_push(rank, loop_id)
    for seq, nbytes in enumerate(payloads):
        compressor.on_loop_iter(rank, loop_id)
        compressor.on_event(rank, CommEvent(
            op="MPI_Send", rank=rank, seq=seq, peer=1, tag=7, nbytes=nbytes))
    compressor.on_loop_pop(rank, loop_id)
    compressor.on_finalize(rank)


class TestKeyInterning:
    def _loop_id(self, compiled):
        return next(
            n.ast_id for n in compiled.cst.preorder() if n.kind == "loop"
        )

    def test_field_change_invalidates_cache(self):
        # 8,8,16,8: the nbytes change must miss the params cache and open
        # a second record; the fourth event re-merges into the first
        # (unbounded keyed merge) even though the cache was invalidated.
        compiled = compile_minimpi(LOOP_SEND)
        loop_id = self._loop_id(compiled)
        fast = IntraProcessCompressor(compiled.cst)
        _drive(fast, loop_id, [8, 8, 16, 8])
        leaf = _leaf(fast)
        assert len(leaf.records) == 2
        assert [len(r.occurrences) for r in leaf.records] == [3, 1]
        ref = IntraProcessCompressor(
            compiled.cst, CypressConfig(fastpath=False))
        _drive(ref, loop_id, [8, 8, 16, 8])
        assert _blob(fast, 1) == _blob(ref, 1)

    def test_windowed_config_does_not_reuse_cached_record(self):
        # With a bounded window the cached record must NOT be reused
        # blindly: A A B A under window=1 opens a fresh record for the
        # final A (the B pushed the first A out of the window).
        compiled = compile_minimpi(LOOP_SEND)
        loop_id = self._loop_id(compiled)
        for config in (CypressConfig(window=1),
                       CypressConfig(window=1, fastpath=False)):
            comp = IntraProcessCompressor(compiled.cst, config)
            _drive(comp, loop_id, [8, 8, 16, 8])
            assert [len(r.occurrences) for r in _leaf(comp).records] \
                == [2, 1, 1], f"fastpath={config.fastpath}"

    def test_relative_ranks_affect_interned_keys(self):
        # The interning cache lives on the (per-rank) CTT leaf, but the
        # key it caches still depends on the config: rank 2 sending to
        # rank 1 stores ("rel", -1) with relative encoding and
        # ("abs", 1) without.
        compiled = compile_minimpi(LOOP_SEND)
        loop_id = self._loop_id(compiled)
        keys = {}
        for relative in (True, False):
            for fastpath in (True, False):
                comp = IntraProcessCompressor(compiled.cst, CypressConfig(
                    relative_ranks=relative, fastpath=fastpath))
                _drive(comp, loop_id, [8, 8], rank=2)
                (record,) = _leaf(comp, rank=2).records
                keys[(relative, fastpath)] = record.key
        assert keys[(True, True)] == keys[(True, False)]
        assert keys[(False, True)] == keys[(False, False)]
        assert keys[(True, True)] != keys[(False, True)]
        assert keys[(True, True)][1] == ("rel", -1)
        assert keys[(False, True)][1] == ("abs", 1)
