"""Run-length ingest properties: run detection, bulk-update equivalence,
and byte-identity of run-collapsed ingestion.

Three layers of the columnar ingest engine, each pinned independently:

* ``packed.event_runs`` — run descriptors must split at every marker,
  req-complete, wildcard receive and request-carrying event, and be
  maximal between splits (checked against a pure-Python reference over
  the original capture list);
* ``CompressedRecord.add_occurrences`` / ``TimeStats.add_many`` — the
  bulk folds must be *bit-for-bit* identical to their per-element
  loops (Welford is float-order sensitive; any reassociation shows up
  here);
* ``IntraProcessCompressor.ingest_runs`` — run-collapsed ingestion of
  random structured programs must serialize byte-identically to
  event-at-a-time ``ingest_stream``, from both a packed blob and a live
  :class:`PackedStream`, with the window both unbounded (plan machinery
  on) and bounded (conservative per-event fallback).
"""

import dataclasses
import struct
import sys

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

sys.path.insert(0, "tests")
from generators import program  # noqa: E402

from repro.core import packed, serialize  # noqa: E402
from repro.core.inter import merge_all  # noqa: E402
from repro.core.intra import CypressConfig, IntraProcessCompressor  # noqa: E402
from repro.core.packed import NONBLOCKING_OPS  # noqa: E402
from repro.core.records import CompressedRecord  # noqa: E402
from repro.core.timing import HIST, MEANSTD, TimeStats  # noqa: E402
from repro.driver import run_compiled  # noqa: E402
from repro.mpisim.pmpi import (  # noqa: E402
    OP_BRANCH_ENTER,
    OP_BRANCH_EXIT,
    OP_EVENT,
    OP_LOOP_ITER,
    OP_LOOP_POP,
    OP_LOOP_PUSH,
    OP_REQ_COMPLETE,
    StreamCaptureSink,
)
from repro.static.instrument import compile_minimpi  # noqa: E402

from .test_packed import events, streams  # noqa: E402

SETTINGS = dict(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


# ---------------------------------------------------------------------------
# Run detection.


def _eligible(ev) -> bool:
    """Mirror of the encoder's run-eligibility test, phrased over the
    CommEvent instead of the packed bytes."""
    return (
        ev.op not in NONBLOCKING_OPS
        and not ev.wildcard
        and not ev.reqs
        and not ev.req_gids
    )


def _head_key(ev):
    """The fields covered by the packed param-window head compare."""
    return (
        ev.op, ev.peer, ev.nbytes, ev.tag, ev.peer2, ev.tag2,
        ev.nbytes2, ev.comm, ev.root, ev.result_comm,
    )


def reference_runs(stream):
    """Pure-Python reference for ``packed.event_runs``: maximal runs of
    ≥2 consecutive eligible events with equal heads, split by any
    non-event item (marker / req-complete) in between."""
    runs = []
    prev = None
    open_run = False
    ei = 0
    for item in stream:
        if item[0] == OP_EVENT:
            ev = item[1]
            if _eligible(ev):
                key = _head_key(ev)
                if prev is not None and key == prev:
                    if open_run:
                        start, count = runs[-1]
                        runs[-1] = (start, count + 1)
                    else:
                        runs.append((ei - 1, 2))
                        open_run = True
                else:
                    prev = key
                    open_run = False
            else:
                prev = None
                open_run = False
            ei += 1
        else:
            prev = None
            open_run = False
    return runs


@st.composite
def runny_streams(draw):
    """Streams biased toward runs: a small pool of base events sampled
    repeatedly, interleaved with the splitters run detection must honor
    — loop/branch markers, req-completes, and wildcard twins of the very
    events that were running."""
    base = draw(st.lists(events(), min_size=1, max_size=3))
    items = []
    for _ in range(draw(st.integers(0, 50))):
        kind = draw(st.integers(0, 9))
        if kind <= 5:
            items.append((OP_EVENT, draw(st.sampled_from(base))))
        elif kind == 6:
            items.append((
                draw(st.sampled_from(
                    [OP_LOOP_PUSH, OP_LOOP_ITER, OP_LOOP_POP,
                     OP_BRANCH_EXIT])),
                draw(st.integers(0, 5)),
            ))
        elif kind == 7:
            items.append((OP_BRANCH_ENTER, draw(st.integers(0, 5)), 0))
        elif kind == 8:
            items.append((OP_REQ_COMPLETE, 1, 2, 3, 0.5))
        else:
            ev = draw(st.sampled_from(base))
            items.append((OP_EVENT, dataclasses.replace(ev, wildcard=True)))
    return items


class TestEventRuns:
    @settings(**SETTINGS)
    @given(runny_streams())
    def test_runs_match_reference_on_runny_streams(self, stream):
        expected = reference_runs(stream)
        ps = packed.encode_stream(stream)
        # Encoder-tracked descriptors (live PackedStream) and the
        # post-hoc column scan (blob) must agree with the reference —
        # and therefore with each other.
        assert packed.event_runs(ps) == expected
        assert packed.event_runs(ps.to_bytes()) == expected

    @settings(**SETTINGS)
    @given(streams)
    def test_runs_match_reference_on_arbitrary_streams(self, stream):
        expected = reference_runs(stream)
        ps = packed.encode_stream(stream)
        assert packed.event_runs(ps) == expected
        assert packed.event_runs(ps.to_bytes()) == expected

    @settings(**SETTINGS)
    @given(runny_streams())
    def test_runs_are_well_formed(self, stream):
        nevents = sum(1 for it in stream if it[0] == OP_EVENT)
        prev_end = 0
        for start, count in packed.event_runs(packed.encode_stream(stream)):
            assert count >= 2
            assert start >= prev_end  # disjoint, ordered
            assert start + count <= nevents
            prev_end = start + count


# ---------------------------------------------------------------------------
# Bulk updates bit-for-bit equal to their per-element loops.


def _bits(x: float) -> bytes:
    return struct.pack("<d", x)


def _stats_bits(ts: TimeStats):
    return (
        ts.count, _bits(ts.mean), _bits(ts.m2),
        _bits(ts.minimum), _bits(ts.maximum),
        None if ts.bins is None else tuple(ts.bins),
    )


finite = st.floats(allow_nan=False, allow_infinity=False, width=64)
# Durations/gaps as the compressor produces them: non-negative, but keep
# a few raw exotic floats (subnormals, huge magnitudes) in the mix.
samples = st.one_of(
    st.floats(min_value=0.0, max_value=1e9, allow_nan=False),
    finite.map(abs),
)


class TestBulkEqualsLoop:
    @settings(**SETTINGS)
    @given(st.sampled_from([MEANSTD, HIST]), st.lists(samples, max_size=80),
           st.lists(samples, max_size=200))
    def test_add_many_equals_add_loop(self, mode, prefix, values):
        one = TimeStats(mode=mode)
        many = TimeStats(mode=mode)
        for v in prefix:  # arbitrary pre-existing state
            one.add(v)
            many.add(v)
        many.add_many(values)
        for v in values:
            one.add(v)
        assert _stats_bits(many) == _stats_bits(one)

    @settings(**SETTINGS)
    @given(
        st.lists(st.tuples(st.integers(0, 2**40), samples, samples),
                 max_size=30),
        st.integers(0, 2**40),
        st.lists(st.tuples(samples, samples), max_size=150),
    )
    def test_add_occurrences_equals_loop(self, prefix, start, pairs):
        key = ("MPI_Send", 1, 4096, 7)
        bulk = CompressedRecord(key=key)
        loop = CompressedRecord(key=key)
        for idx, d, g in prefix:  # arbitrary occurrence-term state
            bulk.add_occurrence(idx, d, g)
            loop.add_occurrence(idx, d, g)
        durations = [d for d, _ in pairs]
        gaps = [g for _, g in pairs]
        bulk.add_occurrences(start, durations, gaps)
        for i, (d, g) in enumerate(pairs):
            loop.add_occurrence(start + i, d, g)
        assert bulk.occurrences.terms == loop.occurrences.terms
        assert bulk.occurrences.length == loop.occurrences.length
        assert _stats_bits(bulk.duration) == _stats_bits(loop.duration)
        assert _stats_bits(bulk.pre_gap) == _stats_bits(loop.pre_gap)


# ---------------------------------------------------------------------------
# Run-collapsed ingestion == event-at-a-time ingestion, byte for byte.


NPROCS = 2


def _trace_blob(comp):
    return serialize.dumps(merge_all(
        [comp.ctt(r) for r in range(NPROCS)], nranks=NPROCS))


class TestIngestRunsByteIdentity:
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow,
                                     HealthCheck.data_too_large])
    @given(program(allow_functions=True),
           st.sampled_from([None, 1, 4]))
    def test_ingest_runs_matches_stream(self, source, window):
        compiled = compile_minimpi(source)
        capture = StreamCaptureSink()
        run_compiled(compiled, NPROCS, tracer=capture)
        cfg = CypressConfig(window=window)
        by_stream = IntraProcessCompressor(compiled.cst, cfg)
        by_blob = IntraProcessCompressor(compiled.cst, cfg)
        by_live = IntraProcessCompressor(compiled.cst, cfg)
        for rank in range(NPROCS):
            stream = capture.streams.get(rank, [])
            ps = packed.encode_stream(stream)
            by_stream.ingest_stream(rank, stream)
            by_blob.ingest_runs(rank, ps.to_bytes())
            by_live.ingest_runs(rank, ps)
        want = _trace_blob(by_stream)
        assert _trace_blob(by_blob) == want, (
            f"window={window}: packed-blob ingest_runs diverged")
        assert _trace_blob(by_live) == want, (
            f"window={window}: live PackedStream ingest_runs diverged")
