"""Schedule independence of the inter-process merge.

Welford stat combination is float non-associative, so a naive merge
gives schedule-dependent bytes.  The merge defers stat materialization
and always folds per-rank sources in ascending rank order, which makes
``fold``, serial ``tree`` and the multiprocessing tree produce
byte-identical serialized traces — the property the parallel executor
relies on to be a pure speed-up."""

import sys

import pytest

sys.path.insert(0, "tests")
from helpers import run_traced  # noqa: E402

from repro.core import serialize  # noqa: E402
from repro.core.inter import (  # noqa: E402
    _parallel_tree_merge,
    _resolve_workers,
    merge_all,
)

NPROCS = 8

SRC = """
func main() {
  var rank = mpi_comm_rank();
  var size = mpi_comm_size();
  for (var i = 0; i < 6; i = i + 1) {
    if (rank % 2 == 0) {
      if (rank + 1 < size) {
        mpi_send(rank + 1, 256, 5);
        mpi_recv(rank + 1, 256, 6);
      }
    } else {
      mpi_recv(rank - 1, 256, 5);
      mpi_send(rank - 1, 256, 6);
    }
    mpi_barrier();
  }
}
"""


def _ctts():
    _, _, cyp, _ = run_traced(SRC, NPROCS)
    return [cyp.ctt(r) for r in range(NPROCS)]


class TestScheduleByteIdentity:
    def test_fold_tree_parallel_identical_bytes(self):
        ctts = _ctts()
        blob_fold = serialize.dumps(merge_all(ctts, schedule="fold"))
        blob_tree = serialize.dumps(merge_all(ctts, schedule="tree"))
        blob_par = serialize.dumps(
            merge_all(ctts, schedule="tree", workers=2, parallel_threshold=4)
        )
        assert blob_tree == blob_fold
        assert blob_par == blob_tree

    def test_parallel_helper_matches_serial_when_pool_available(self):
        ctts = _ctts()
        serial = serialize.dumps(merge_all(ctts, schedule="tree"))
        merged = _parallel_tree_merge(ctts, nworkers=2)
        if merged is None:
            pytest.skip("no usable multiprocessing pool in this environment")
        merged.finalize()
        assert serialize.dumps(merged) == serial

    def test_roundtrip_is_canonical(self):
        # dumps() -> loads() -> dumps() must reach a fixed point after one
        # cycle: group order in the file is canonical (by lowest member
        # rank), not schedule order.  (The first cycle may shrink the
        # string table — loop/branch names are not serialized — so the
        # fixed point is asserted on the reloaded form.)
        ctts = _ctts()
        blob = serialize.dumps(merge_all(ctts, schedule="fold"))
        blob2 = serialize.dumps(serialize.loads(blob))
        assert serialize.dumps(serialize.loads(blob2)) == blob2

    def test_below_threshold_stays_serial(self):
        ctts = _ctts()
        merged = merge_all(
            ctts, schedule="tree", workers=4, parallel_threshold=10_000
        )
        assert merged.nranks_merged == NPROCS
        assert serialize.dumps(merged) == serialize.dumps(
            merge_all(ctts, schedule="tree")
        )


class TestWorkerResolution:
    def test_defaults_are_serial(self):
        assert _resolve_workers(None) == 1
        assert _resolve_workers(0) == 1
        assert _resolve_workers(1) == 1

    def test_auto_uses_cpu_count(self):
        assert _resolve_workers("auto") >= 1

    def test_explicit_count_passes_through(self):
        assert _resolve_workers(3) == 3

    def test_bad_value_rejected(self):
        with pytest.raises(ValueError):
            _resolve_workers("many")


class TestApiPlumbing:
    def test_run_merge_accepts_workers(self):
        from repro.core.api import run_cypress
        from repro.workloads import get

        w = get("cg")
        run = run_cypress(w.source, 8, defines=w.defines(8, 0.2))
        merged = run.merge(schedule="tree", workers=2)
        assert merged.nranks_merged == 8
        # cached — second call returns the same object
        assert run.merge() is merged
