"""SPSC shared-memory ring: wraparound, oversize payloads, EOF, timeouts.

The ring is the byte transport under the parallel shm compression path
(docs/INTERNALS.md §11).  The invariants tested here are the ones the
pool protocol leans on:

* byte-stream semantics survive wraparound at *every* physical boundary
  offset — the two-part memcpy in both ``try_write`` and ``read_exact``;
* ``read_exact`` may request more bytes than the ring's capacity and
  drains incrementally while the writer refills (waiting for the full
  payload to be resident at once would deadlock against a blocked
  writer — the bug class this suite pins);
* ``close_write`` turns an under-supplied read into ``RingClosed``, and
  deadlines raise ``RingTimeout`` instead of hanging.
"""

import os
import signal
import threading
import time

import pytest

from repro.core.shmring import RingClosed, RingTimeout, ShmRing


@pytest.fixture
def ring():
    r = ShmRing(64)
    yield r
    r.close()
    r.unlink()


class TestWraparound:
    def test_roundtrip_at_every_boundary_offset(self):
        # Pre-advance head/tail to each possible physical offset, then
        # push a payload that is guaranteed to cross the end of the
        # buffer.  Any off-by-one in either two-part copy corrupts it.
        capacity = 64
        payload = bytes(range(48))
        for offset in range(capacity):
            r = ShmRing(capacity)
            try:
                if offset:
                    r.write(b"\xee" * offset)
                    assert r.read_exact(offset) == b"\xee" * offset
                r.write(payload, timeout=5.0)
                assert r.read_exact(len(payload), timeout=5.0) == payload
                assert r.pending() == 0
            finally:
                r.close()
                r.unlink()

    def test_try_write_partial_then_drain(self, ring):
        data = bytes(range(100))
        wrote = ring.try_write(data)
        assert wrote == 64  # ring full
        assert ring.try_write(data, wrote) == 0
        assert ring.read_exact(10) == data[:10]
        wrote += ring.try_write(data, wrote)
        assert wrote == 74
        assert ring.read_exact(64) == data[10:74]

    def test_monotonic_counters(self, ring):
        for i in range(10):
            ring.write(b"x" * 40)
            ring.read_exact(40)
        assert ring.head == ring.tail == 400


class TestOversizePayloads:
    def test_payload_larger_than_capacity_streams_through(self, ring):
        # 10x the capacity: read_exact must consume incrementally while
        # the writer blocks on free space — the regression that
        # deadlocked worker and parent when a packed rank blob outgrew
        # the ring.
        payload = bytes(i % 251 for i in range(640))
        t = threading.Thread(target=ring.write, args=(payload, 10.0))
        t.start()
        try:
            assert ring.read_exact(len(payload), timeout=10.0) == payload
        finally:
            t.join(timeout=10.0)
        assert not t.is_alive()
        assert ring.pending() == 0

    def test_interleaved_frames_across_wrap(self, ring):
        # Many small frames whose sizes are coprime with the capacity,
        # so every physical offset gets exercised as a frame boundary.
        frames = [bytes([i]) * 7 for i in range(96)]
        done = []

        def feed():
            for fr in frames:
                ring.write(fr, timeout=10.0)
            done.append(True)

        t = threading.Thread(target=feed)
        t.start()
        try:
            for fr in frames:
                assert ring.read_exact(7, timeout=10.0) == fr
        finally:
            t.join(timeout=10.0)
        assert done


class TestCloseAndTimeout:
    def test_reader_sees_eof_on_closed_empty_ring(self, ring):
        ring.close_write()
        with pytest.raises(RingClosed):
            ring.read_exact(1)

    def test_reader_drains_remainder_then_eof(self, ring):
        ring.write(b"tail")
        ring.close_write()
        assert ring.read_exact(4) == b"tail"
        with pytest.raises(RingClosed):
            ring.read_exact(1)

    def test_close_mid_payload_raises(self, ring):
        # Fewer bytes than requested when the writer closes: the partial
        # read must not be silently returned.
        ring.write(b"ab")
        ring.close_write()
        with pytest.raises(RingClosed):
            ring.read_exact(3)

    def test_read_timeout(self, ring):
        with pytest.raises(RingTimeout):
            ring.read_exact(1, timeout=0.05)

    def test_write_timeout_when_full(self, ring):
        ring.write(b"x" * 64)
        with pytest.raises(RingTimeout):
            ring.write(b"y", timeout=0.05)

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            ShmRing(0)


class TestPeerDeath:
    """Regression: one side of the ring SIGKILLed mid-frame while the
    other blocks in ``read_exact``/``write``.  A dead peer leaves the
    shared counters frozen — no EOF, no closed flag — so the only way
    out is the deadline: the blocked side must raise ``RingTimeout``
    within its timeout, never hang.  This is why every mid-frame ring
    operation in :mod:`repro.core.respool` carries a timeout."""

    def _fork_ctx(self):
        import multiprocessing

        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("fork start method unavailable")
        return multiprocessing.get_context("fork")

    def test_writer_killed_mid_frame_read_fails_within_timeout(self):
        ctx = self._fork_ctx()
        ring = ShmRing(256)

        def _writer():
            ring.write(b"\xab" * 10)  # 10 of a 64-byte frame, then die
            os.kill(os.getpid(), signal.SIGKILL)

        try:
            proc = ctx.Process(target=_writer)
            proc.start()
            t0 = time.monotonic()
            with pytest.raises(RingTimeout):
                ring.read_exact(64, timeout=1.0)
            assert time.monotonic() - t0 < 10.0
            proc.join(timeout=10.0)
        finally:
            ring.close()
            ring.unlink()

    def test_reader_killed_mid_drain_write_fails_within_timeout(self):
        ctx = self._fork_ctx()
        ring = ShmRing(64)

        def _reader():
            ring.read_exact(16)  # start draining, then die
            os.kill(os.getpid(), signal.SIGKILL)

        try:
            proc = ctx.Process(target=_reader)
            proc.start()
            t0 = time.monotonic()
            with pytest.raises(RingTimeout):
                # 4x the capacity: must block on the dead reader after
                # at most capacity + 16 bytes land.
                ring.write(b"\x01" * 256, timeout=1.0)
            assert time.monotonic() - t0 < 10.0
            proc.join(timeout=10.0)
        finally:
            ring.close()
            ring.unlink()
