"""Stride-tuple sequence tests (unit + property-based)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sequences import IntSequence, SequenceCursor


class TestEncoding:
    def test_empty(self):
        seq = IntSequence()
        assert len(seq) == 0 and seq.to_list() == []

    def test_constant_run_single_term(self):
        seq = IntSequence.from_values([7] * 100)
        assert seq.terms == [(7, 100, 0)]

    def test_arithmetic_run_single_term(self):
        seq = IntSequence.from_values(range(0, 20, 2))
        assert seq.terms == [(0, 10, 2)]

    def test_paper_stride_example(self):
        # Paper Fig. 11: branch taken at iterations <0, 8, 2>.
        seq = IntSequence.from_values([0, 2, 4, 6, 8])
        assert seq.terms == [(0, 5, 2)]

    def test_descending_stride(self):
        seq = IntSequence.from_values([10, 7, 4, 1])
        assert seq.terms == [(10, 4, -3)]

    def test_irregular_splits_terms(self):
        seq = IntSequence.from_values([0, 1, 2, 10, 20, 21, 22])
        assert len(seq.terms) <= 4
        assert seq.to_list() == [0, 1, 2, 10, 20, 21, 22]

    def test_nested_loop_counts_fig10(self):
        # Paper Fig. 10: inner loop counts <0, 1, 2, ..., k-1>.
        k = 12
        seq = IntSequence.from_values(range(k))
        assert seq.terms == [(0, k, 1)]

    def test_negative_values(self):
        seq = IntSequence.from_values([-5, -3, -1, 1])
        assert seq.terms == [(-5, 4, 2)]


class TestEquality:
    def test_equal_sequences(self):
        a = IntSequence.from_values([1, 2, 3])
        b = IntSequence.from_values([1, 2, 3])
        assert a == b and hash(a) == hash(b)

    def test_different_sequences(self):
        assert IntSequence.from_values([1, 2]) != IntSequence.from_values([1, 3])

    def test_not_equal_to_other_types(self):
        assert IntSequence() != [1, 2]


class TestCursor:
    def test_sequential_read(self):
        seq = IntSequence.from_values([3, 5, 5, 9])
        cur = SequenceCursor(seq)
        assert [cur.next() for _ in range(4)] == [3, 5, 5, 9]
        assert cur.exhausted()

    def test_contains_next_consumes(self):
        cur = SequenceCursor(IntSequence.from_values([0, 2, 4]))
        assert cur.contains_next(0)
        assert not cur.contains_next(1)
        assert cur.contains_next(2)

    def test_peek_does_not_consume(self):
        cur = SequenceCursor(IntSequence.from_values([7]))
        assert cur.peek() == 7
        assert cur.peek() == 7
        assert cur.next() == 7
        assert cur.peek() is None

    def test_next_on_exhausted_raises(self):
        import pytest

        cur = SequenceCursor(IntSequence())
        with pytest.raises(StopIteration):
            cur.next()


def _greedy_reference_terms(values):
    """The pre-repair appender: singleton-absorb + continuation only.
    Used as the baseline the donation repair must never lose to."""
    terms: list[tuple[int, int, int]] = []
    for v in values:
        if terms:
            s, c, d = terms[-1]
            if c == 1:
                terms[-1] = (s, 2, v - s)
                continue
            if v == s + c * d:
                terms[-1] = (s, c + 1, d)
                continue
        terms.append((v, 1, 0))
    return terms


class TestDonationRepair:
    def test_alternating_pairs_compress_to_one_term_per_pair(self):
        # 0,0,1,1,2,2 — each repeated value is a stride-0 pair.  Without
        # the repair, the greedy singleton-absorb mis-pairs across value
        # boundaries and the encoding degrades.
        seq = IntSequence.from_values([0, 0, 1, 1, 2, 2])
        assert seq.to_list() == [0, 0, 1, 1, 2, 2]
        assert seq.terms == [(0, 2, 0), (1, 2, 0), (2, 2, 0)]

    def test_pair_pattern_bounded_by_half_length(self):
        values = [i // 2 for i in range(40)]
        seq = IntSequence.from_values(values)
        assert seq.to_list() == values
        assert seq.term_count() <= len(values) // 2

    def test_mistaken_stride_head_released_to_run(self):
        # The singleton absorbs 5 under stride 5; when 6 arrives the pair
        # donates its second element so the 5,6,7,8 run is captured whole.
        seq = IntSequence.from_values([0, 5, 6, 7, 8])
        assert seq.to_list() == [0, 5, 6, 7, 8]
        assert seq.terms == [(0, 1, 0), (5, 4, 1)]

    def test_repair_chain_stays_exact(self):
        values = [0, 0, 1, 1, 2, 2, 3, 3, 10, 20, 21, 22]
        seq = IntSequence.from_values(values)
        assert seq.to_list() == values

    @settings(max_examples=300, deadline=None)
    @given(st.lists(st.integers(-64, 64)))
    def test_never_worse_than_greedy_and_exact(self, values):
        seq = IntSequence.from_values(values)
        assert seq.to_list() == values
        assert seq.term_count() <= max(1, len(_greedy_reference_terms(values)))


def _runs(draw_ints):
    """Strategy: concatenations of constant and arithmetic runs — the
    shapes loop counts and occurrence indices actually take, which are
    exactly the inputs that drive append() through its donation-repair
    chains (a run's head gets absorbed under the wrong stride and must
    be donated onward when the continuation fails)."""
    run = st.tuples(
        st.integers(-32, 32),   # start
        st.integers(1, 8),      # count
        st.integers(-4, 4),     # stride
    ).map(lambda t: [t[0] + i * t[2] for i in range(t[1])])
    return st.lists(run, min_size=0, max_size=8).map(
        lambda rs: [v for r in rs for v in r]
    )


def _odometer(widths):
    """Row-major odometer readout: every digit sequence of a mixed-radix
    counter — the visit-index pattern of perfectly nested loops."""
    values = []
    total = 1
    for w in widths:
        total *= w
    for i in range(total):
        rem, digits = i, []
        for w in reversed(widths):
            digits.append(rem % w)
            rem //= w
        values.extend(reversed(digits))
    return values


class TestDonationRepairChains:
    """Satellite: round-trip safety of append()'s repair chains on the
    run-structured inputs the tracer actually produces."""

    @settings(max_examples=300, deadline=None)
    @given(_runs(None))
    def test_concatenated_runs_roundtrip(self, values):
        seq = IntSequence.from_values(values)
        assert seq.to_list() == values
        assert len(seq) == len(values)

    @settings(max_examples=100, deadline=None)
    @given(st.lists(st.integers(1, 4), min_size=1, max_size=4))
    def test_odometer_patterns_roundtrip(self, widths):
        values = _odometer(widths)
        seq = IntSequence.from_values(values)
        assert seq.to_list() == values

    @settings(max_examples=200, deadline=None)
    @given(_runs(None))
    def test_terms_are_internally_consistent(self, values):
        # length matches the terms, and every term's count is positive —
        # the invariants SequenceCursor relies on.
        seq = IntSequence.from_values(values)
        assert seq.length == sum(c for _s, c, _d in seq.terms)
        assert all(c >= 1 for _s, c, _d in seq.terms)

    def test_interleaved_pairs_with_tail_run(self):
        # A repair chain directly followed by material for another:
        # exercises the terms[-2] fold-back branch twice in a row.
        values = [0, 0, 1, 1, 5, 6, 7, 2, 2, 3, 3]
        seq = IntSequence.from_values(values)
        assert seq.to_list() == values


class TestCursorEdges:
    @settings(max_examples=200, deadline=None)
    @given(st.lists(st.integers(0, 30), min_size=0, max_size=40))
    def test_exhaustion_contract(self, values):
        cur = SequenceCursor(IntSequence.from_values(values))
        for v in values:
            assert not cur.exhausted()
            assert cur.peek() == v
            assert cur.next() == v
        assert cur.exhausted()
        assert cur.peek() is None
        assert not cur.contains_next(0)
        import pytest

        with pytest.raises(StopIteration):
            cur.next()

    @settings(max_examples=200, deadline=None)
    @given(
        st.lists(st.integers(0, 20), min_size=1, max_size=30),
        st.integers(0, 21),
    )
    def test_contains_next_mismatch_does_not_consume(self, values, probe):
        cur = SequenceCursor(IntSequence.from_values(values))
        before = cur.peek()
        hit = cur.contains_next(probe)
        if hit:
            assert before == probe
        else:
            assert cur.peek() == before

    @settings(max_examples=100, deadline=None)
    @given(st.data())
    def test_monotone_subset_walk(self, data):
        # Replay's usage pattern: probe a monotone superset of visit
        # indices; contains_next must accept exactly the recorded ones.
        recorded = data.draw(
            st.lists(st.integers(0, 30), unique=True, max_size=20).map(sorted)
        )
        cur = SequenceCursor(IntSequence.from_values(recorded))
        hits = [v for v in range(31) if cur.contains_next(v)]
        assert hits == recorded
        assert cur.exhausted()

    def test_contains_next_on_empty(self):
        cur = SequenceCursor(IntSequence())
        assert cur.exhausted() and cur.peek() is None
        assert not cur.contains_next(0)


class TestSizeAccounting:
    def test_compressible_cheaper_than_random(self):
        regular = IntSequence.from_values(range(1000))
        irregular = IntSequence.from_values(
            [((i * 2654435761) >> 7) % 1000 for i in range(1000)]
        )
        assert regular.approx_bytes() < irregular.approx_bytes()


class TestProperties:
    @settings(max_examples=200, deadline=None)
    @given(st.lists(st.integers(-(2**40), 2**40)))
    def test_roundtrip(self, values):
        seq = IntSequence.from_values(values)
        assert seq.to_list() == values
        assert len(seq) == len(values)

    @settings(max_examples=100, deadline=None)
    @given(st.lists(st.integers(-1000, 1000)))
    def test_incremental_equals_bulk(self, values):
        a = IntSequence()
        for v in values:
            a.append(v)
        assert a == IntSequence.from_values(values)

    @settings(max_examples=100, deadline=None)
    @given(st.lists(st.integers(0, 50), min_size=1))
    def test_cursor_replays_sequence(self, values):
        cur = SequenceCursor(IntSequence.from_values(values))
        assert [cur.next() for _ in values] == values

    @settings(max_examples=100, deadline=None)
    @given(
        st.integers(-100, 100),
        st.integers(1, 200),
        st.integers(-10, 10),
    )
    def test_arithmetic_progressions_are_one_term(self, start, count, stride):
        seq = IntSequence.from_values(
            start + i * stride for i in range(count)
        )
        assert len(seq.terms) == 1

    @settings(max_examples=100, deadline=None)
    @given(st.lists(st.integers(0, 2**20)))
    def test_term_count_never_exceeds_length(self, values):
        seq = IntSequence.from_values(values)
        assert seq.term_count() <= max(1, len(values))
