"""Corruption-robustness fuzzing of the trace loader: any mangled input
must either load (if the damage missed the live bytes) or raise
ValueError — never an arbitrary internal exception."""

import sys

from hypothesis import given, settings
from hypothesis import strategies as st

sys.path.insert(0, "tests")
from helpers import run_traced  # noqa: E402

from repro.core import serialize  # noqa: E402
from repro.core.inter import merge_all  # noqa: E402

SRC = """
func main() {
  var rank = mpi_comm_rank();
  var size = mpi_comm_size();
  for (var i = 0; i < 6; i = i + 1) {
    if (rank < size - 1) { mpi_send(rank + 1, 128, 2); }
    if (rank > 0) { mpi_recv(rank - 1, 128, 2); }
    mpi_allreduce(16);
  }
}
"""


def make_blob() -> bytes:
    _, rec, cyp, _ = run_traced(SRC, 4)
    merged = merge_all([cyp.ctt(r) for r in range(4)])
    return serialize.dumps(merged)


BLOB = None


def blob() -> bytes:
    global BLOB
    if BLOB is None:
        BLOB = make_blob()
    return BLOB


class TestCorruptionRobustness:
    @settings(max_examples=150, deadline=None)
    @given(st.data())
    def test_single_byte_flip_never_crashes(self, data):
        raw = bytearray(blob())
        pos = data.draw(st.integers(0, len(raw) - 1))
        raw[pos] ^= data.draw(st.integers(1, 255))
        try:
            serialize.loads(bytes(raw))
        except ValueError:
            pass  # the expected failure mode

    @settings(max_examples=50, deadline=None)
    @given(st.integers(0, 10_000))
    def test_truncation_never_crashes(self, cut):
        raw = blob()
        truncated = raw[: min(cut, len(raw) - 1)]
        try:
            serialize.loads(truncated)
        except ValueError:
            pass

    @settings(max_examples=50, deadline=None)
    @given(st.binary(max_size=200))
    def test_random_garbage_rejected(self, junk):
        try:
            serialize.loads(junk)
        except ValueError:
            pass

    def test_empty_input(self):
        import pytest

        with pytest.raises(ValueError):
            serialize.loads(b"")

    def test_gzip_garbage(self):
        import pytest

        with pytest.raises(ValueError):
            serialize.loads(b"\x1f\x8bnot really gzip at all")
