"""Request→GID table lifecycle: the table must stay bounded by the number
of in-flight requests, and a consumed request id must never resolve to
its stale creator GID if the runtime reuses the id."""

import sys

sys.path.insert(0, "tests")
from helpers import assert_replay_exact, run_traced  # noqa: E402

from repro.core.intra import IntraProcessCompressor  # noqa: E402
from repro.mpisim.events import CommEvent  # noqa: E402
from repro.static.instrument import compile_minimpi  # noqa: E402


def _leaves(cyp, rank, op):
    return [v for v in cyp.ctt(rank).preorder() if v.op == op]


class TestBoundedTable:
    def test_table_empty_after_every_wait(self):
        # 16 iterations × 2 requests: without eviction the table grows to
        # 32 entries per rank; with wait-consumption eviction it must be
        # empty once the loop completes (nothing is in flight).
        src = """
        func main() {
          var peer = 1 - mpi_comm_rank();
          var r[2];
          for (var i = 0; i < 16; i = i + 1) {
            r[0] = mpi_irecv(peer, 64, 0);
            r[1] = mpi_isend(peer, 64, 0);
            mpi_waitall(r, 2);
          }
        }
        """
        _, rec, cyp, _ = run_traced(src, 2)
        for rank in range(2):
            assert cyp.state(rank).req_gid == {}, (
                f"rank {rank}: req_gid leaked "
                f"{len(cyp.state(rank).req_gid)} entries"
            )
        assert_replay_exact(rec, cyp, 2)

    def test_in_flight_requests_stay_mapped(self):
        # Eviction must happen at consumption, not earlier: between post
        # and wait the mapping is live.
        src = """
        func main() {
          var peer = 1 - mpi_comm_rank();
          var r1 = mpi_irecv(peer, 8, 0);
          var r2 = mpi_isend(peer, 8, 0);
          mpi_wait(r2);
          mpi_wait(r1);
        }
        """
        _, rec, cyp, _ = run_traced(src, 2)
        assert cyp.state(0).req_gid == {}
        # Both waits resolved to real creator GIDs (not the -1 sentinel).
        for wait in _leaves(cyp, 0, "MPI_Wait"):
            (record,) = wait.records
            assert record.key[10] != (-1,)
        assert_replay_exact(rec, cyp, 2)


class TestRequestIdReuse:
    """Drive the sink interface directly with a runtime that recycles
    request ids — the simulator never does, but PMPI request handles in
    real MPI are reused constantly."""

    SRC = """
    func main() {
      var r1 = mpi_isend(1, 8, 0);
      mpi_wait(r1);
      var r2 = mpi_isend(1, 16, 1);
      mpi_wait(r2);
    }
    """

    def _drive(self, events):
        compiled = compile_minimpi(self.SRC)
        cyp = IntraProcessCompressor(compiled.cst)
        for ev in events:
            cyp.on_event(0, ev)
        return cyp

    def test_reused_id_maps_to_new_creator(self):
        # Same rid=7 used for two different isend call sites: each wait
        # must see the GID of *its* creator.
        cyp = self._drive([
            CommEvent(op="MPI_Isend", rank=0, seq=0, peer=1, nbytes=8,
                      tag=0, req=7),
            CommEvent(op="MPI_Wait", rank=0, seq=1, reqs=(7,)),
            CommEvent(op="MPI_Isend", rank=0, seq=2, peer=1, nbytes=16,
                      tag=1, req=7),
            CommEvent(op="MPI_Wait", rank=0, seq=3, reqs=(7,)),
        ])
        isend_gids = [v.gid for v in _leaves(cyp, 0, "MPI_Isend")]
        wait_gids = [v.records[0].key[10] for v in _leaves(cyp, 0, "MPI_Wait")]
        assert wait_gids == [(isend_gids[0],), (isend_gids[1],)]
        assert cyp.state(0).req_gid == {}

    def test_consumed_id_never_resolves_stale(self):
        # A wait on an id that was already consumed (and not re-posted)
        # must get the -1 sentinel, not the first isend's GID — the
        # regression the eviction fixes.
        cyp = self._drive([
            CommEvent(op="MPI_Isend", rank=0, seq=0, peer=1, nbytes=8,
                      tag=0, req=7),
            CommEvent(op="MPI_Wait", rank=0, seq=1, reqs=(7,)),
            CommEvent(op="MPI_Isend", rank=0, seq=2, peer=1, nbytes=16,
                      tag=1, req=9),
            CommEvent(op="MPI_Wait", rank=0, seq=3, reqs=(7,)),
        ])
        wait_gids = [v.records[0].key[10] for v in _leaves(cyp, 0, "MPI_Wait")]
        isend_gids = [v.gid for v in _leaves(cyp, 0, "MPI_Isend")]
        assert wait_gids[0] == (isend_gids[0],)
        assert wait_gids[1] == (-1,)  # stale lookup must miss
        # rid 9 is still in flight, rid 7 is gone.
        assert cyp.state(0).req_gid == {9: isend_gids[1]}
