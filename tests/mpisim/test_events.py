"""CommEvent key/format tests."""

from repro.mpisim.events import (
    DIR_BOTH,
    DIR_NONE,
    DIR_RECV,
    DIR_SEND,
    CommEvent,
    direction_of,
    format_event,
)


def ev(**kw):
    base = dict(op="MPI_Send", rank=0, seq=0)
    base.update(kw)
    return CommEvent(**base)


class TestKeys:
    def test_key_excludes_time(self):
        a = ev(time_start=1.0, duration=2.0)
        b = ev(time_start=99.0, duration=5.0)
        assert a.key() == b.key()

    def test_key_excludes_seq_and_raw_requests(self):
        a = ev(seq=1, req=11, reqs=(1, 2))
        b = ev(seq=9, req=77, reqs=(3, 4))
        assert a.key() == b.key()

    def test_key_includes_req_gids(self):
        a = ev(op="MPI_Waitall", req_gids=(3, 4))
        b = ev(op="MPI_Waitall", req_gids=(3, 5))
        assert a.key() != b.key()

    def test_key_includes_parameters(self):
        assert ev(nbytes=8).key() != ev(nbytes=16).key()
        assert ev(tag=1).key() != ev(tag=2).key()
        assert ev(peer=1).key() != ev(peer=2).key()
        assert ev(comm=0).key() != ev(comm=1).key()
        assert ev(result_comm=1).key() != ev(result_comm=2).key()

    def test_replay_tuple_matches_key_semantics(self):
        a = ev(peer=3, nbytes=64, tag=7)
        assert a.replay_tuple()[0] == "MPI_Send"
        assert a.replay_tuple() == ev(peer=3, nbytes=64, tag=7,
                                      time_start=5.0).replay_tuple()


class TestDirections:
    def test_send_ops(self):
        assert direction_of("MPI_Send") == DIR_SEND
        assert direction_of("MPI_Isend") == DIR_SEND

    def test_recv_ops(self):
        assert direction_of("MPI_Recv") == DIR_RECV
        assert direction_of("MPI_Irecv") == DIR_RECV

    def test_sendrecv_both(self):
        assert direction_of("MPI_Sendrecv") == DIR_BOTH

    def test_collectives_none(self):
        assert direction_of("MPI_Allreduce") == DIR_NONE
        assert ev(op="MPI_Barrier").direction == DIR_NONE


class TestFormat:
    def test_minimal(self):
        line = format_event(ev(op="MPI_Barrier"))
        assert line.startswith("MPI_Barrier r0")

    def test_full_p2p(self):
        line = format_event(
            ev(peer=3, nbytes=128, tag=9, req=5, time_start=1.5, duration=0.7)
        )
        for token in ("peer=3", "bytes=128", "tag=9", "req=5"):
            assert token in line

    def test_wildcard_marked(self):
        assert "anysrc" in format_event(ev(op="MPI_Recv", peer=2, wildcard=True))

    def test_wait_lists_requests(self):
        assert "reqs=1,2" in format_event(ev(op="MPI_Waitall", reqs=(1, 2)))
