"""Nested communicator splits and waitany through the full pipeline."""

import sys

sys.path.insert(0, "tests")
from helpers import assert_replay_exact, run_traced  # noqa: E402


class TestNestedSplit:
    SRC = """
    func main() {
      var rank = mpi_comm_rank();
      var size = mpi_comm_size();
      // 2D process grid via two-level splits: rows, then pairs in a row.
      var rowcomm = mpi_comm_split(0, rank / 4, rank);
      var paircomm = mpi_comm_split(rowcomm, mpi_comm_rank_on(rowcomm) / 2, rank);
      for (var it = 0; it < 4; it = it + 1) {
        mpi_allreduce_on(rowcomm, 64);
        mpi_allreduce_on(paircomm, 8);
      }
      mpi_barrier();
    }
    """

    def test_split_of_split_replays_exactly(self):
        _, rec, cyp, _ = run_traced(self.SRC, 8)
        assert_replay_exact(rec, cyp, 8, merged=True)

    def test_pair_comms_have_two_members(self):
        from repro.mpisim.collectives import CommRegistry
        from repro.mpisim.runtime import Runtime

        got = {}

        def main(comm):
            row = yield from comm.call(
                "mpi_comm_split", [0, comm.rank // 4, comm.rank]
            )
            row_rank = comm.runtime.collectives.comms.comm_rank(row, comm.rank)
            pair = yield from comm.call(
                "mpi_comm_split", [row, row_rank // 2, comm.rank]
            )
            got[comm.rank] = (row, pair)

        rt = Runtime(8)
        rt.run(main)
        # 2 rows and 4 pairs, all distinct ids
        rows = {v[0] for v in got.values()}
        pairs = {v[1] for v in got.values()}
        assert len(rows) == 2 and len(pairs) == 4
        for pair in pairs:
            assert rt.collectives.comms.size(pair) == 2

    def test_simmpi_handles_nested_splits(self):
        from repro.core.decompress import decompress_all
        from repro.core.inter import merge_all
        from repro.replay import predict

        _, rec, cyp, result = run_traced(self.SRC, 8)
        merged = merge_all([cyp.ctt(r) for r in range(8)])
        sim = predict(decompress_all(merged))
        assert sim.elapsed > 0


class TestWaitanyPipeline:
    SRC = """
    func main() {
      var rank = mpi_comm_rank();
      if (rank == 0) {
        var r[3];
        for (var it = 0; it < 5; it = it + 1) {
          r[0] = mpi_irecv(1, 8, 0);
          r[1] = mpi_irecv(2, 8, 0);
          r[2] = mpi_irecv(3, 8, 0);
          var first = mpi_waitany(r, 3);
          // consume the rest in order
          for (var j = 0; j < 3; j = j + 1) {
            if (j != first) { mpi_wait(r[j]); }
          }
        }
      } else {
        for (var it = 0; it < 5; it = it + 1) {
          compute(20 * rank);
          mpi_send(0, 8, 0);
        }
      }
      mpi_barrier();
    }
    """

    def test_waitany_replays_exactly(self):
        _, rec, cyp, _ = run_traced(self.SRC, 4)
        assert_replay_exact(rec, cyp, 4, merged=True)

    def test_simmpi_replays_waitany(self):
        from repro.core.decompress import decompress_all
        from repro.core.inter import merge_all
        from repro.replay import predict

        _, rec, cyp, _ = run_traced(self.SRC, 4)
        merged = merge_all([cyp.ctt(r) for r in range(4)])
        sim = predict(decompress_all(merged))
        assert sim.elapsed > 0
