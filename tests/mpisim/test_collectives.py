"""Collective synchronisation tests."""

import pytest

from repro.mpisim.collectives import CollectiveEngine
from repro.mpisim.errors import CollectiveMismatchError
from repro.mpisim.netmodel import NetworkModel
from repro.mpisim.pmpi import RecordingSink
from repro.mpisim.runtime import Runtime


class TestEngine:
    def setup_method(self):
        self.engine = CollectiveEngine(3, NetworkModel())

    def test_slot_completes_when_all_arrive(self):
        k0 = self.engine.enter(0, 0, "MPI_Barrier", -1, 0, 1.0)
        assert not self.engine.poll(k0).done
        self.engine.enter(1, 0, "MPI_Barrier", -1, 0, 5.0)
        self.engine.enter(2, 0, "MPI_Barrier", -1, 0, 3.0)
        slot = self.engine.poll(k0)
        assert slot.done
        assert slot.completion_time > 5.0  # after the last arrival

    def test_sequential_collectives_use_separate_slots(self):
        k_first = self.engine.enter(0, 0, "MPI_Barrier", -1, 0, 1.0)
        k_second = self.engine.enter(0, 0, "MPI_Bcast", 0, 8, 2.0)
        assert k_first != k_second

    def test_mismatch_raises(self):
        self.engine.enter(0, 0, "MPI_Bcast", 0, 8, 1.0)
        with pytest.raises(CollectiveMismatchError):
            self.engine.enter(1, 0, "MPI_Reduce", 0, 8, 1.0)

    def test_root_mismatch_raises(self):
        self.engine.enter(0, 0, "MPI_Bcast", 0, 8, 1.0)
        with pytest.raises(CollectiveMismatchError):
            self.engine.enter(1, 0, "MPI_Bcast", 1, 8, 1.0)

    def test_describe_waiting(self):
        key = self.engine.enter(0, 0, "MPI_Barrier", -1, 0, 1.0)
        text = self.engine.describe_waiting(key)
        assert "MPI_Barrier" in text and "2 rank" in text


class TestThroughRuntime:
    @pytest.mark.parametrize(
        "name,args",
        [
            ("mpi_barrier", []),
            ("mpi_bcast", [0, 1024]),
            ("mpi_reduce", [0, 1024]),
            ("mpi_allreduce", [1024]),
            ("mpi_gather", [0, 64]),
            ("mpi_scatter", [0, 64]),
            ("mpi_allgather", [64]),
            ("mpi_alltoall", [64]),
        ],
    )
    def test_each_collective_completes_and_traces(self, name, args):
        sink = RecordingSink()

        def main(comm):
            yield from comm.call(name, list(args))

        Runtime(4, tracer=sink).run(main)
        assert len(sink.events) == 4
        for rank in range(4):
            (ev,) = sink.events[rank]
            assert ev.op.lower() == "mpi_" + name[4:]

    def test_all_ranks_get_same_completion_floor(self):
        finish = {}

        def main(comm):
            if comm.rank == 0:
                comm.clock = 1000.0  # straggler
            yield from comm.call("mpi_barrier", [])
            finish[comm.rank] = comm.clock

        Runtime(4).run(main)
        assert min(finish.values()) > 1000.0

    def test_alltoall_scales_with_ranks(self):
        model = NetworkModel()
        assert model.collective_cost("MPI_Alltoall", 1024, 16) > \
            model.collective_cost("MPI_Alltoall", 1024, 4)

    def test_unknown_collective_cost_rejected(self):
        with pytest.raises(ValueError):
            NetworkModel().collective_cost("MPI_Nope", 8, 4)
