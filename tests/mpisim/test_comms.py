"""Sub-communicator tests (MPI_Comm_split and collectives on comms)."""

import sys

import pytest

sys.path.insert(0, "tests")
from helpers import assert_replay_exact, run_traced  # noqa: E402

from repro.mpisim.collectives import CommRegistry  # noqa: E402
from repro.mpisim.errors import CollectiveMismatchError  # noqa: E402
from repro.mpisim.pmpi import RecordingSink  # noqa: E402
from repro.mpisim.runtime import Runtime  # noqa: E402


class TestCommRegistry:
    def test_world_is_comm_zero(self):
        reg = CommRegistry(8)
        assert reg.members(0) == list(range(8))
        assert reg.size(0) == 8
        assert reg.comm_rank(0, 5) == 5

    def test_split_by_color(self):
        reg = CommRegistry(6)
        results = reg.split({r: (r % 2, r) for r in range(6)})
        evens = results[0]
        odds = results[1]
        assert evens != odds
        assert reg.members(evens) == [0, 2, 4]
        assert reg.members(odds) == [1, 3, 5]

    def test_split_key_orders_ranks(self):
        reg = CommRegistry(4)
        # Reverse key order -> reversed comm ranks.
        results = reg.split({r: (0, -r) for r in range(4)})
        comm = results[0]
        assert reg.members(comm) == [3, 2, 1, 0]
        assert reg.comm_rank(comm, 3) == 0

    def test_negative_color_is_undefined(self):
        reg = CommRegistry(4)
        results = reg.split({0: (-1, 0), 1: (0, 1), 2: (0, 2), 3: (-1, 3)})
        assert results[0] == -1 and results[3] == -1
        assert reg.members(results[1]) == [1, 2]

    def test_deterministic_ids(self):
        a = CommRegistry(4)
        b = CommRegistry(4)
        ra = a.split({r: (r % 2, r) for r in range(4)})
        rb = b.split({r: (r % 2, r) for r in range(4)})
        assert ra == rb

    def test_unknown_comm_rejected(self):
        reg = CommRegistry(2)
        with pytest.raises(CollectiveMismatchError):
            reg.members(42)

    def test_nonmember_rank_rejected(self):
        reg = CommRegistry(4)
        results = reg.split({r: (r % 2, r) for r in range(4)})
        with pytest.raises(CollectiveMismatchError):
            reg.comm_rank(results[0], 1)  # odd rank not in even comm


class TestRuntimeSplit:
    def test_split_returns_consistent_comm(self):
        got = {}

        def main(comm):
            new = yield from comm.call(
                "mpi_comm_split", [0, comm.rank % 2, comm.rank]
            )
            got[comm.rank] = new

        Runtime(4).run(main)
        assert got[0] == got[2] != got[1] == got[3]

    def test_subcomm_collective_only_waits_for_members(self):
        finish = {}

        def main(comm):
            new = yield from comm.call(
                "mpi_comm_split", [0, comm.rank % 2, comm.rank]
            )
            if comm.rank % 2 == 0:
                yield from comm.call("mpi_allreduce_on", [new, 64])
            else:
                # odds never join evens' collective; both groups proceed
                yield from comm.call("mpi_barrier_on", [new])
            finish[comm.rank] = comm.clock

        Runtime(4).run(main)
        assert len(finish) == 4

    def test_collective_on_foreign_comm_rejected(self):
        def main(comm):
            new = yield from comm.call(
                "mpi_comm_split", [0, comm.rank % 2, comm.rank]
            )
            other = new + 1 if comm.rank % 2 == 0 else new - 1
            yield from comm.call("mpi_barrier_on", [other])

        with pytest.raises(CollectiveMismatchError):
            Runtime(4).run(main)

    def test_split_event_traced_with_result(self):
        sink = RecordingSink()

        def main(comm):
            yield from comm.call("mpi_comm_split", [0, 0, comm.rank])

        Runtime(2, tracer=sink).run(main)
        (ev,) = sink.events[0]
        assert ev.op == "MPI_Comm_split"
        assert ev.result_comm >= 1
        assert ev.tag == 0  # colour
        assert ev.peer == 0  # key


class TestTracedSubcommPrograms:
    ROWCOL = """
    func main() {
      mpi_init();
      var rank = mpi_comm_rank();
      var size = mpi_comm_size();
      var cols = size / 2;
      var rowcomm = mpi_comm_split(0, rank / cols, rank);
      var colcomm = mpi_comm_split(0, rank % cols, rank);
      for (var it = 0; it < 6; it = it + 1) {
        mpi_allreduce_on(rowcomm, 8 * (it + 1));
        mpi_bcast_on(colcomm, 0, 256);
      }
      mpi_finalize();
    }
    """

    def test_replay_exact(self):
        _, rec, cyp, _ = run_traced(self.ROWCOL, 8)
        assert_replay_exact(rec, cyp, 8, merged=True)

    def test_row_ranks_share_records(self):
        from repro.core.inter import merge_all
        from repro.static.cst import CALL

        _, rec, cyp, _ = run_traced(self.ROWCOL, 8)
        merged = merge_all([cyp.ctt(r) for r in range(8)])
        # The split and allreduce leaves: split results differ per row
        # (different comm ids) -> two groups; within a row they merge.
        leaves = [
            v for v in merged.root.preorder()
            if v.kind == CALL and v.op == "MPI_Allreduce"
        ]
        (leaf,) = leaves
        assert len(leaf.groups) == 2
        groups = sorted(g.ranks for g in leaf.groups.values())
        assert groups == [[0, 1, 2, 3], [4, 5, 6, 7]]

    def test_simmpi_replays_subcomm_collectives(self):
        from repro.core.decompress import decompress_all
        from repro.core.inter import merge_all
        from repro.replay import predict

        _, rec, cyp, result = run_traced(self.ROWCOL, 8)
        merged = merge_all([cyp.ctt(r) for r in range(8)])
        sim = predict(decompress_all(merged))
        assert sim.elapsed > 0
        # Both sub-groups synchronise per iteration; predicted and
        # measured should be in the same ballpark.
        assert 0.2 < sim.elapsed / result.elapsed < 5.0

    def test_serialization_preserves_subcomm_trace(self):
        from repro.core import serialize
        from repro.core.decompress import decompress_merged_rank
        from repro.core.inter import merge_all

        _, rec, cyp, _ = run_traced(self.ROWCOL, 8)
        merged = merge_all([cyp.ctt(r) for r in range(8)])
        back = serialize.loads(serialize.dumps(merged, gzip=True))
        for rank in range(8):
            truth = [e.replay_tuple() for e in rec.events[rank]]
            replay = [e.call_tuple() for e in decompress_merged_rank(back, rank)]
            assert replay == truth

    def test_comm_queries(self):
        src = """
        func main() {
          var rank = mpi_comm_rank();
          var size = mpi_comm_size();
          var sub = mpi_comm_split(0, rank % 2, rank);
          if (mpi_comm_size_on(sub) != size / 2) { mpi_barrier(); }
          if (mpi_comm_rank_on(sub) != rank / 2) { mpi_barrier(); }
        }
        """
        # If either query returned wrong values some ranks would enter the
        # barrier and others not -> deadlock.  Completing cleanly is the
        # assertion.
        _, rec, cyp, _ = run_traced(src, 6)
        assert all(len(v) == 0 for v in rec.events.values()) or True
