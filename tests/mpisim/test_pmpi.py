"""PMPI sink-layer tests: MultiSink fan-out, TimingSink accounting,
marker plumbing."""

from repro.mpisim.events import CommEvent
from repro.mpisim.pmpi import MultiSink, NullSink, TimingSink, TraceSink


class CountingSink(TraceSink):
    wants_markers = True

    def __init__(self):
        self.counts = {}

    def _bump(self, name):
        self.counts[name] = self.counts.get(name, 0) + 1

    def on_loop_push(self, rank, ast_id):
        self._bump("push")

    def on_loop_iter(self, rank, ast_id):
        self._bump("iter")

    def on_loop_pop(self, rank, ast_id):
        self._bump("pop")

    def on_branch_enter(self, rank, ast_id, path):
        self._bump("benter")

    def on_branch_exit(self, rank, ast_id):
        self._bump("bexit")

    def on_recurse_enter(self, rank, ast_id):
        self._bump("renter")

    def on_recurse_exit(self, rank, ast_id):
        self._bump("rexit")

    def on_event(self, rank, event):
        self._bump("event")

    def on_request_complete(self, rank, rid, source, nbytes, when):
        self._bump("complete")

    def on_finalize(self, rank):
        self._bump("finalize")


def drive(sink):
    ev = CommEvent(op="MPI_Send", rank=0, seq=0)
    sink.on_loop_push(0, 1)
    sink.on_loop_iter(0, 1)
    sink.on_branch_enter(0, 2, 0)
    sink.on_event(0, ev)
    sink.on_branch_exit(0, 2)
    sink.on_loop_pop(0, 1)
    sink.on_recurse_enter(0, 3)
    sink.on_recurse_exit(0, 3)
    sink.on_request_complete(0, 1, 1, 8, 1.0)
    sink.on_finalize(0)


class TestMultiSink:
    def test_fans_out_every_callback(self):
        a, b = CountingSink(), CountingSink()
        multi = MultiSink([a, b])
        drive(multi)
        assert a.counts == b.counts
        assert a.counts["event"] == 1 and a.counts["push"] == 1
        assert sum(a.counts.values()) == 10

    def test_wants_markers_any(self):
        assert MultiSink([NullSink(), CountingSink()]).wants_markers
        assert not MultiSink([NullSink(), NullSink()]).wants_markers


class TestTimingSink:
    def test_counts_and_time_accumulate(self):
        inner = CountingSink()
        timed = TimingSink(inner)
        drive(timed)
        assert timed.calls == 10
        assert timed.elapsed >= 0
        assert sum(inner.counts.values()) == 10

    def test_wants_markers_forwarded(self):
        assert TimingSink(CountingSink()).wants_markers
        assert not TimingSink(NullSink()).wants_markers


class TestMarkersFromInterpreter:
    def test_marker_stream_matches_program_shape(self):
        from repro.driver import run_compiled
        from repro.static.instrument import compile_minimpi

        compiled = compile_minimpi(
            """
            func main() {
              for (var i = 0; i < 4; i = i + 1) {
                if (i % 2 == 0) { mpi_send(0, 8, 0); mpi_recv(0, 8, 0); }
              }
            }
            """
        )
        sink = CountingSink()
        run_compiled(compiled, 1, tracer=sink)
        assert sink.counts["push"] == 1
        assert sink.counts["iter"] == 4
        assert sink.counts["pop"] == 1
        assert sink.counts["benter"] == 4  # taken or not, the if executes
        assert sink.counts["bexit"] == 4
        assert sink.counts["event"] == 4  # 2 sends + 2 recvs

    def test_markers_suppressed_without_consumer(self):
        from repro.driver import run_compiled
        from repro.mpisim.pmpi import RecordingSink
        from repro.static.instrument import compile_minimpi

        compiled = compile_minimpi(
            "func main() { for (var i = 0; i < 3; i = i + 1) "
            "{ mpi_barrier(); } }"
        )
        sink = RecordingSink()  # wants_markers is False
        run_compiled(compiled, 2, tracer=sink)
        assert len(sink.events[0]) == 3  # events flow, markers skipped
