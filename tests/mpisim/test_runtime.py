"""Runtime tests using hand-written rank generators (no MiniMPI)."""

import pytest

from repro.mpisim.datatypes import ANY_SOURCE
from repro.mpisim.errors import (
    CollectiveMismatchError,
    DeadlockError,
    InvalidRequestError,
    MPISimError,
    ProgramError,
)
from repro.mpisim.pmpi import RecordingSink
from repro.mpisim.runtime import Runtime


def run(nprocs, fn, tracer=None):
    runtime = Runtime(nprocs, tracer=tracer)
    result = runtime.run(fn)
    return runtime, result


class TestPointToPoint:
    def test_send_recv_pair(self):
        def main(comm):
            if comm.rank == 0:
                yield from comm.call("mpi_send", [1, 100, 7])
            else:
                yield from comm.call("mpi_recv", [0, 100, 7])

        _, result = run(2, main)
        assert result.total_messages == 1

    def test_recv_blocks_until_send(self):
        order = []

        def main(comm):
            if comm.rank == 0:
                yield from comm.call("mpi_recv", [1, 8, 0])
                order.append("recv-done")
            else:
                order.append("sending")
                yield from comm.call("mpi_send", [0, 8, 0])

        run(2, main)
        assert order == ["sending", "recv-done"]

    def test_wildcard_recv_records_actual_source(self):
        sink = RecordingSink()

        def main(comm):
            if comm.rank == 0:
                yield from comm.call("mpi_recv", [ANY_SOURCE, 8, 0])
            else:
                yield from comm.call("mpi_send", [0, 8, 0])

        run(2, main, tracer=sink)
        (ev,) = sink.events[0]
        assert ev.op == "MPI_Recv" and ev.peer == 1 and ev.wildcard

    def test_self_message(self):
        def main(comm):
            yield from comm.call("mpi_send", [comm.rank, 8, 0])
            yield from comm.call("mpi_recv", [comm.rank, 8, 0])

        _, result = run(2, main)
        assert result.total_messages == 2

    def test_message_clock_ordering(self):
        clocks = {}

        def main(comm):
            if comm.rank == 0:
                comm.clock = 100.0
                yield from comm.call("mpi_send", [1, 1000, 0])
            else:
                yield from comm.call("mpi_recv", [0, 1000, 0])
                clocks["recv_done"] = comm.clock

        run(2, main)
        assert clocks["recv_done"] > 100.0  # waited for the message

    def test_bad_peer_rejected(self):
        def main(comm):
            yield from comm.call("mpi_send", [5, 8, 0])

        with pytest.raises(ProgramError):
            run(2, main)

    def test_negative_bytes_rejected(self):
        def main(comm):
            yield from comm.call("mpi_send", [0, -1, 0])

        with pytest.raises(ProgramError):
            run(2, main)


class TestNonblocking:
    def test_isend_irecv_wait(self):
        def main(comm):
            if comm.rank == 0:
                req = yield from comm.call("mpi_isend", [1, 64, 3])
                yield from comm.call("mpi_wait", [req])
            else:
                req = yield from comm.call("mpi_irecv", [0, 64, 3])
                yield from comm.call("mpi_wait", [req])

        _, result = run(2, main)
        assert result.total_messages == 1

    def test_waitall(self):
        def main(comm):
            peer = 1 - comm.rank
            r1 = yield from comm.call("mpi_irecv", [peer, 8, 0])
            r2 = yield from comm.call("mpi_isend", [peer, 8, 0])
            yield from comm.call("mpi_waitall", [[r1, r2], 2])

        run(2, main)

    def test_waitany_returns_index(self):
        got = {}

        def main(comm):
            if comm.rank == 0:
                r1 = yield from comm.call("mpi_irecv", [1, 8, 1])
                r2 = yield from comm.call("mpi_irecv", [1, 8, 2])
                idx = yield from comm.call("mpi_waitany", [[r1, r2], 2])
                got["first"] = idx
                yield from comm.call("mpi_waitall", [[r1 if idx else r2], 1])
            else:
                yield from comm.call("mpi_send", [0, 8, 2])
                yield from comm.call("mpi_send", [0, 8, 1])

        run(2, main)
        assert got["first"] in (0, 1)

    def test_waitsome_returns_count(self):
        got = {}

        def main(comm):
            if comm.rank == 0:
                r1 = yield from comm.call("mpi_irecv", [1, 8, 1])
                r2 = yield from comm.call("mpi_irecv", [1, 8, 2])
                n = yield from comm.call("mpi_waitsome", [[r1, r2], 2])
                got["n"] = n
            else:
                yield from comm.call("mpi_send", [0, 8, 1])
                yield from comm.call("mpi_send", [0, 8, 2])

        run(2, main)
        assert got["n"] >= 1
        # Note: waitsome may leave requests unconsumed; this test sends both
        # before rank 0 waits, so both complete and are consumed.
        assert got["n"] == 2

    def test_test_polls(self):
        got = {}

        def main(comm):
            if comm.rank == 0:
                req = yield from comm.call("mpi_irecv", [1, 8, 0])
                got["first"] = yield from comm.call("mpi_test", [req])
                while True:
                    flag = yield from comm.call("mpi_test", [req])
                    if flag:
                        break
                    yield
            else:
                yield
                yield from comm.call("mpi_send", [0, 8, 0])

        run(2, main)

    def test_double_wait_rejected(self):
        def main(comm):
            if comm.rank == 0:
                req = yield from comm.call("mpi_isend", [1, 8, 0])
                yield from comm.call("mpi_wait", [req])
                yield from comm.call("mpi_wait", [req])
            else:
                yield from comm.call("mpi_recv", [0, 8, 0])

        with pytest.raises(InvalidRequestError):
            run(2, main)

    def test_unknown_request_rejected(self):
        def main(comm):
            yield from comm.call("mpi_wait", [999])

        with pytest.raises(InvalidRequestError):
            run(1, main)


class TestErrors:
    def test_deadlock_detected(self):
        def main(comm):
            yield from comm.call("mpi_recv", [1 - comm.rank, 8, 0])

        with pytest.raises(DeadlockError) as exc:
            run(2, main)
        assert 0 in exc.value.blocked and 1 in exc.value.blocked

    def test_unmatched_send_detected(self):
        def main(comm):
            if comm.rank == 0:
                yield from comm.call("mpi_send", [1, 8, 0])
            return
            yield

        with pytest.raises(MPISimError, match="never received"):
            run(2, main)

    def test_orphan_irecv_detected(self):
        def main(comm):
            if comm.rank == 0:
                yield from comm.call("mpi_irecv", [1, 8, 0])
            return
            yield

        with pytest.raises(MPISimError, match="never matched"):
            run(2, main)

    def test_collective_mismatch(self):
        def main(comm):
            if comm.rank == 0:
                yield from comm.call("mpi_bcast", [0, 8])
            else:
                yield from comm.call("mpi_reduce", [0, 8])

        with pytest.raises(CollectiveMismatchError):
            run(2, main)

    def test_zero_ranks_rejected(self):
        with pytest.raises(ValueError):
            Runtime(0)


class TestRunResult:
    def test_event_counts(self):
        sink = RecordingSink()

        def main(comm):
            yield from comm.call("mpi_init", [])
            yield from comm.call("mpi_barrier", [])
            yield from comm.call("mpi_finalize", [])

        _, result = run(4, main, tracer=sink)
        assert result.total_events == 12
        assert result.elapsed > 0
