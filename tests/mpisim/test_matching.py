"""Message-matching engine tests."""

from repro.mpisim.datatypes import ANY_SOURCE, ANY_TAG
from repro.mpisim.matching import Mailbox, Message


def msg(src, tag=0, arrival=1.0, seq=0, comm=0, nbytes=8):
    return Message(
        src=src, dst=0, tag=tag, nbytes=nbytes, comm=comm,
        send_time=0.0, arrival_time=arrival, seq=seq,
    )


class TestExactMatch:
    def test_match_consumes(self):
        box = Mailbox(0)
        box.deliver(msg(1))
        assert box.match(1, 0, 0) is not None
        assert box.match(1, 0, 0) is None

    def test_no_match_wrong_source(self):
        box = Mailbox(0)
        box.deliver(msg(1))
        assert box.match(2, 0, 0) is None

    def test_no_match_wrong_tag(self):
        box = Mailbox(0)
        box.deliver(msg(1, tag=5))
        assert box.match(1, 7, 0) is None

    def test_fifo_per_source(self):
        box = Mailbox(0)
        box.deliver(msg(1, arrival=1.0, seq=1, nbytes=100))
        box.deliver(msg(1, arrival=2.0, seq=2, nbytes=200))
        assert box.match(1, 0, 0).nbytes == 100
        assert box.match(1, 0, 0).nbytes == 200

    def test_tag_skips_nonmatching_head(self):
        # MPI: a recv for tag 7 matches the earliest tag-7 message even if
        # a tag-5 message from the same source arrived first.
        box = Mailbox(0)
        box.deliver(msg(1, tag=5, seq=1))
        box.deliver(msg(1, tag=7, seq=2))
        got = box.match(1, 7, 0)
        assert got.tag == 7
        assert box.match(1, 5, 0).tag == 5


class TestWildcards:
    def test_any_source_picks_earliest_arrival(self):
        box = Mailbox(0)
        box.deliver(msg(3, arrival=5.0, seq=1))
        box.deliver(msg(1, arrival=2.0, seq=2))
        assert box.match(ANY_SOURCE, 0, 0).src == 1

    def test_any_source_tie_broken_by_send_order(self):
        box = Mailbox(0)
        box.deliver(msg(3, arrival=2.0, seq=2))
        box.deliver(msg(1, arrival=2.0, seq=1))
        assert box.match(ANY_SOURCE, 0, 0).src == 1

    def test_any_source_respects_tag(self):
        box = Mailbox(0)
        box.deliver(msg(1, tag=5))
        assert box.match(ANY_SOURCE, 7, 0) is None
        assert box.match(ANY_SOURCE, 5, 0).src == 1

    def test_any_tag(self):
        box = Mailbox(0)
        box.deliver(msg(1, tag=42))
        assert box.match(1, ANY_TAG, 0).tag == 42

    def test_any_source_any_tag(self):
        box = Mailbox(0)
        box.deliver(msg(2, tag=9))
        assert box.match(ANY_SOURCE, ANY_TAG, 0).src == 2

    def test_any_source_preserves_per_source_order(self):
        box = Mailbox(0)
        box.deliver(msg(1, arrival=1.0, seq=1, nbytes=10))
        box.deliver(msg(1, arrival=2.0, seq=2, nbytes=20))
        assert box.match(ANY_SOURCE, 0, 0).nbytes == 10


class TestBookkeeping:
    def test_pending_count(self):
        box = Mailbox(0)
        assert box.pending_count() == 0
        box.deliver(msg(1))
        box.deliver(msg(2))
        assert box.pending_count() == 2
        box.match(1, 0, 0)
        assert box.pending_count() == 1

    def test_comm_isolation(self):
        box = Mailbox(0)
        box.deliver(msg(1, comm=0))
        assert box.match(1, 0, comm=1) is None
        assert box.match(ANY_SOURCE, 0, 1) is None
        assert box.match(1, 0, comm=0) is not None
