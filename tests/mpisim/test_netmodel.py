"""Network model tests."""

from repro.mpisim.netmodel import NetworkModel


class TestTransferTime:
    def test_monotone_in_size(self):
        m = NetworkModel()
        times = [m.transfer_time(n) for n in (0, 100, 10_000, 100_000, 10_000_000)]
        assert times == sorted(times)

    def test_rendezvous_adds_setup(self):
        m = NetworkModel()
        below = m.transfer_time(m.eager_threshold)
        above = m.transfer_time(m.eager_threshold + 1)
        assert above > below  # handshake discontinuity

    def test_latency_floor(self):
        m = NetworkModel()
        assert m.transfer_time(0) >= m.latency


class TestCosts:
    def test_send_cost_bounded_for_large_messages(self):
        m = NetworkModel()
        # Eager copy cost saturates at the threshold (rendezvous = zero copy).
        assert m.send_cost(10**9) == m.send_cost(m.eager_threshold)

    def test_recv_cost_constant(self):
        m = NetworkModel()
        assert m.recv_cost(1) == m.recv_cost(10**6)


class TestCollectiveCosts:
    def test_log_scaling_barrier(self):
        m = NetworkModel()
        c4 = m.collective_cost("MPI_Barrier", 0, 4)
        c256 = m.collective_cost("MPI_Barrier", 0, 256)
        assert abs(c256 / c4 - 4.0) < 0.01  # log2 256 / log2 4

    def test_allreduce_twice_reduce(self):
        m = NetworkModel()
        assert m.collective_cost("MPI_Allreduce", 1024, 16) == \
            2 * m.collective_cost("MPI_Reduce", 1024, 16)

    def test_bcast_grows_with_bytes(self):
        m = NetworkModel()
        assert m.collective_cost("MPI_Bcast", 1 << 20, 8) > \
            m.collective_cost("MPI_Bcast", 8, 8)
