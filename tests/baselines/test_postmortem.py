"""Post-mortem compression tests: raw text traces -> offline ScalaTrace."""

import sys

import pytest

sys.path.insert(0, "tests")
from helpers import truth_signatures  # noqa: E402

from repro.baselines.postmortem import (  # noqa: E402
    TraceParseError,
    compress_postmortem,
    parse_line,
    parse_rank_trace,
    parse_req_line,
)
from repro.baselines.rawtrace import RawTraceSink  # noqa: E402
from repro.baselines.rsd import expand  # noqa: E402
from repro.driver import run_compiled  # noqa: E402
from repro.mpisim.pmpi import MultiSink, RecordingSink  # noqa: E402
from repro.static.instrument import compile_minimpi  # noqa: E402


class TestParsing:
    def test_simple_line(self):
        ev = parse_line("MPI_Send r3 t=1.500 d=0.700 peer=4 bytes=128 tag=9", 0)
        assert ev.op == "MPI_Send" and ev.rank == 3
        assert ev.peer == 4 and ev.nbytes == 128 and ev.tag == 9
        assert ev.time_start == pytest.approx(1.5)

    def test_collective_line(self):
        ev = parse_line("MPI_Bcast r0 t=0.000 d=2.000 bytes=64 root=2", 0)
        assert ev.root == 2 and ev.peer == -100

    def test_wait_line_with_reqs(self):
        ev = parse_line("MPI_Waitall r1 t=0.000 d=0.100 reqs=3,4", 0)
        assert ev.reqs == (3, 4)

    def test_wildcard_flag(self):
        ev = parse_line("MPI_Recv r0 t=0.1 d=0.2 peer=5 bytes=8 anysrc", 0)
        assert ev.wildcard and ev.peer == 5

    def test_req_line(self):
        assert parse_req_line("REQ 7 src=2 bytes=64 t=1.234") == (7, 2, 64)
        assert parse_req_line("MPI_Send r0 t=0 d=0") is None

    def test_garbage_rejected(self):
        with pytest.raises(TraceParseError):
            parse_line("this is not a trace line", 0)

    def test_blank_and_req_skipped(self):
        events, resolutions = parse_rank_trace(
            "MPI_Barrier r0 t=0.000 d=1.000\n\nREQ 1 src=3 bytes=8 t=2.0\n"
        )
        assert len(events) == 1
        assert resolutions == {1: (3, 8)}


class TestRoundTrip:
    SRC = """
    func main() {
      var rank = mpi_comm_rank();
      var size = mpi_comm_size();
      for (var i = 0; i < 8; i = i + 1) {
        if (rank < size - 1) { mpi_send(rank + 1, 64, 1); }
        if (rank > 0) { mpi_recv(rank - 1, 64, 1); }
        mpi_allreduce(8);
      }
    }
    """

    def collect(self, nprocs, src=None):
        compiled = compile_minimpi(src or self.SRC, cypress=False)
        rec = RecordingSink()
        raw = RawTraceSink()
        run_compiled(compiled, nprocs, tracer=MultiSink([rec, raw]))
        texts = {r: raw.rank_blob(r).decode() for r in range(nprocs)}
        return rec, texts

    def test_offline_equals_online_content(self):
        rec, texts = self.collect(4)
        comp = compress_postmortem(texts)
        for rank in range(4):
            got = expand(comp.queue(rank))
            want = truth_signatures(rec, rank)
            assert got == want

    def test_compression_achieved(self):
        rec, texts = self.collect(4)
        comp = compress_postmortem(texts)
        flat_events = sum(len(v) for v in rec.events.values())
        compressed_terms = sum(len(comp.queue(r)) for r in range(4))
        assert compressed_terms < flat_events / 4

    def test_wildcards_resolved_from_req_lines(self):
        src = """
        func main() {
          var rank = mpi_comm_rank();
          if (rank == 0) {
            var r1 = mpi_irecv(-1, 8, 0);
            var r2 = mpi_irecv(-1, 8, 0);
            mpi_wait(r1);
            mpi_wait(r2);
          } else {
            compute(40 * rank);
            mpi_send(0, 8, 0);
          }
        }
        """
        rec, texts = self.collect(3, src)
        comp = compress_postmortem(texts)
        got = expand(comp.queue(0))
        want = truth_signatures(rec, 0)
        assert got == want
