"""Regression tests: pending (unresolved) wildcard receives must never be
folded by the baseline matchers — two provisional terms with identical
signatures may resolve to different sources.

This was a real bug: three wildcard irecvs posted back-to-back, resolved
in staggered order, let the first resolution's fold pass merge the two
still-pending terms, orphaning one pending reference and replaying the
wrong source.
"""

import sys

sys.path.insert(0, "tests")
from helpers import truth_signatures  # noqa: E402

from repro.baselines.rsd import expand  # noqa: E402
from repro.baselines.scalatrace import ScalaTraceCompressor  # noqa: E402
from repro.baselines.scalatrace2 import (  # noqa: E402
    ScalaTrace2Compressor,
    expand_intra,
)
from repro.driver import run_compiled  # noqa: E402
from repro.mpisim.pmpi import MultiSink, RecordingSink  # noqa: E402
from repro.static.instrument import compile_minimpi  # noqa: E402

# Rank 0 posts several wildcard irecvs back-to-back; senders respond at
# staggered times, so resolutions interleave with pending terms at the
# queue tail.
STAGGERED = """
func main() {
  var rank = mpi_comm_rank();
  var size = mpi_comm_size();
  if (rank == 0) {
    var r[6];
    for (var i = 0; i < size - 1; i = i + 1) {
      r[i] = mpi_irecv(-1, 8, 0);
    }
    mpi_barrier();
    for (var i = 0; i < size - 1; i = i + 1) {
      mpi_wait(r[i]);
    }
  } else {
    mpi_barrier();
    compute(100 * rank);
    mpi_send(0, 8, 0);
  }
}
"""


def run_both(nprocs):
    compiled = compile_minimpi(STAGGERED, cypress=False)
    rec = RecordingSink()
    st = ScalaTraceCompressor()
    st2 = ScalaTrace2Compressor()
    run_compiled(compiled, nprocs, tracer=MultiSink([rec, st, st2]))
    return rec, st, st2


class TestPendingNotFolded:
    def test_scalatrace_lossless_with_staggered_wildcards(self):
        rec, st, _ = run_both(4)
        assert expand(st.queue(0)) == truth_signatures(rec, 0)

    def test_scalatrace2_lossless_with_staggered_wildcards(self):
        rec, _, st2 = run_both(4)
        assert expand_intra(st2.queue(0)) == truth_signatures(rec, 0)

    def test_larger_fanin(self):
        rec, st, st2 = run_both(7)
        assert expand(st.queue(0)) == truth_signatures(rec, 0)
        assert expand_intra(st2.queue(0)) == truth_signatures(rec, 0)

    def test_resolved_terms_still_fold(self):
        # After everything resolves, repeated patterns must still compress
        # (the fix must not simply disable folding).
        src = """
        func main() {
          var rank = mpi_comm_rank();
          if (rank == 0) {
            for (var i = 0; i < 10; i = i + 1) {
              var r = mpi_irecv(-1, 8, 0);
              mpi_wait(r);
            }
          } else {
            for (var i = 0; i < 10; i = i + 1) { mpi_send(0, 8, 0); }
          }
        }
        """
        compiled = compile_minimpi(src, cypress=False)
        rec = RecordingSink()
        st = ScalaTraceCompressor()
        run_compiled(compiled, 2, tracer=MultiSink([rec, st]))
        assert expand(st.queue(0)) == truth_signatures(rec, 0)
        assert len(st.queue(0)) <= 3  # irecv+wait pairs folded into an RSD
