"""ScalaTrace-2 baseline tests: elastic terms, loop-agnostic merge,
lossy summarization."""

import sys

import pytest

sys.path.insert(0, "tests")
from helpers import truth_signatures  # noqa: E402

from repro.baselines.scalatrace2 import (  # noqa: E402
    ElasticEvent,
    ElasticRSD,
    ScalaTrace2Compressor,
    elastic_shape,
    expand_intra,
    expand_rank_st2,
    merge_all_st2,
)
from repro.driver import run_compiled  # noqa: E402
from repro.mpisim.pmpi import MultiSink, RecordingSink  # noqa: E402
from repro.static.instrument import compile_minimpi  # noqa: E402


def run_st2(source, nprocs, defines=None):
    compiled = compile_minimpi(source, cypress=False)
    rec = RecordingSink()
    st2 = ScalaTrace2Compressor()
    run_compiled(compiled, nprocs, defines=defines, tracer=MultiSink([rec, st2]))
    return rec, st2


VARIED_SIZES = """
func main() {
  for (var i = 0; i < 10; i = i + 1) {
    mpi_bcast(0, 64 + 8 * i);
  }
}
"""


class TestElasticCompression:
    def test_varying_sizes_fold_into_one_slot(self):
        # This is what plain ScalaTrace cannot do (see test_scalatrace).
        rec, st2 = run_st2(VARIED_SIZES, 2)
        queue = st2.queue(0)
        assert len(queue) == 1
        assert isinstance(queue[0], ElasticRSD)
        (slot,) = queue[0].body
        assert slot.sizes.to_list() == [64 + 8 * i for i in range(10)]
        assert len(slot.sizes.terms) == 1  # stride-compressed values

    def test_expansion_reconstructs_varied_sizes(self):
        rec, st2 = run_st2(VARIED_SIZES, 2)
        assert expand_intra(st2.queue(0)) == truth_signatures(rec, 0)

    def test_elastic_shape_blanks_data_fields(self):
        sig = (
            "MPI_Send", ("rel", 1), ("abs", -100), 0, 0, 4096, 0, 0, -1,
            False, 0, -1,
        )
        shape = elastic_shape(sig)
        assert shape[1] == ("?", "rel")
        assert shape[5] == "?"
        sig2 = (
            "MPI_Send", ("rel", 3), ("abs", -100), 0, 0, 8192, 0, 0, -1,
            False, 0, -1,
        )
        assert elastic_shape(sig2) == shape

    def test_different_tags_do_not_merge(self):
        rec, st2 = run_st2(
            """
            func main() {
              var peer = 1 - mpi_comm_rank();
              for (var i = 0; i < 4; i = i + 1) {
                mpi_sendrecv(peer, 64, 1, peer, 64, 1);
                mpi_sendrecv(peer, 64, 2, peer, 64, 2);
              }
            }
            """,
            2,
        )
        (rsd,) = st2.queue(0)
        assert len(rsd.body) == 2  # tags differ -> separate slots

    def test_nested_elastic_rsd_counts(self):
        rec, st2 = run_st2(
            """
            func main() {
              for (var i = 0; i < 4; i = i + 1) {
                for (var j = 0; j < 3; j = j + 1) { mpi_barrier(); }
                mpi_allreduce(8);
              }
            }
            """,
            2,
        )
        assert expand_intra(st2.queue(0)) == truth_signatures(rec, 0)


class TestInterMerge:
    def test_uniform_ranks_one_bucket(self):
        rec, st2 = run_st2(
            "func main() { for (var i = 0; i < 6; i = i + 1) { mpi_allreduce(8); } }",
            8,
        )
        merged = merge_all_st2({r: st2.queue(r) for r in range(8)})
        assert not merged.lossy
        for slot in merged.slots:
            assert len(slot.variants) == 1
            assert slot.variants[0][0] == list(range(8))

    def test_lossless_when_variants_fit(self):
        src = """
        func main() {
          var rank = mpi_comm_rank();
          var size = mpi_comm_size();
          for (var i = 0; i < 8; i = i + 1) {
            if (rank < size - 1) { mpi_send(rank + 1, 64, 0); }
            if (rank > 0) { mpi_recv(rank - 1, 64, 0); }
          }
        }
        """
        rec, st2 = run_st2(src, 6)
        merged = merge_all_st2({r: st2.queue(r) for r in range(6)})
        for rank in range(6):
            assert expand_rank_st2(merged, rank) == truth_signatures(rec, rank)

    def test_variant_overflow_goes_lossy(self):
        # Every rank sends a different byte count -> variants explode past
        # the limit and the slot is summarized (the ST2 trade-off).
        src = """
        func main() {
          var rank = mpi_comm_rank();
          mpi_send(rank, 8 * (rank + 1), 0);
          mpi_recv(rank, 8 * (rank + 1), 0);
        }
        """
        rec, st2 = run_st2(src, 12)
        merged = merge_all_st2(
            {r: st2.queue(r) for r in range(12)}, variant_limit=4
        )
        assert merged.lossy
        summarized = [s for s in merged.slots if s.summarized]
        assert summarized
        # The summary still knows the distinct sizes that occurred.
        slot = summarized[0]
        (ranks, term) = slot.variants[0]
        assert ranks == list(range(12))

    def test_different_paths_stay_separate(self):
        src = """
        func main() {
          var rank = mpi_comm_rank();
          if (rank == 0) {
            mpi_send(1, 8, 0);
            mpi_recv(1, 8, 1);
          } else {
            mpi_recv(0, 8, 0);
            mpi_send(0, 8, 1);
          }
        }
        """
        rec, st2 = run_st2(src, 2)
        merged = merge_all_st2({r: st2.queue(r) for r in range(2)})
        for rank in range(2):
            assert expand_rank_st2(merged, rank) == truth_signatures(rec, rank)


class TestWildcardHandling:
    def test_wildcard_irecv_patched_on_completion(self):
        src = """
        func main() {
          var rank = mpi_comm_rank();
          if (rank == 0) {
            var r = mpi_irecv(-1, 8, 0);
            mpi_wait(r);
          } else {
            mpi_send(0, 8, 0);
          }
        }
        """
        rec, st2 = run_st2(src, 2)
        assert expand_intra(st2.queue(0)) == truth_signatures(rec, 0)
