"""Baseline binary-encoding tests (size-comparison fairness)."""

import gzip as _gzip
import sys

sys.path.insert(0, "tests")
from helpers import run_traced  # noqa: E402

from repro.baselines.scalatrace import ScalaTraceCompressor, merge_all_queues  # noqa: E402
from repro.baselines.scalatrace2 import ScalaTrace2Compressor, merge_all_st2  # noqa: E402
from repro.baselines.serialize import scalatrace2_dumps, scalatrace_dumps  # noqa: E402
from repro.driver import run_compiled  # noqa: E402
from repro.mpisim.pmpi import MultiSink  # noqa: E402
from repro.static.instrument import compile_minimpi  # noqa: E402

SRC = """
func main() {
  var rank = mpi_comm_rank();
  var size = mpi_comm_size();
  for (var i = 0; i < n; i = i + 1) {
    if (rank < size - 1) { mpi_send(rank + 1, 256, 1); }
    if (rank > 0) { mpi_recv(rank - 1, 256, 1); }
    mpi_allreduce(8);
  }
}
"""


def compressors(nprocs, defines):
    compiled = compile_minimpi(SRC, cypress=False)
    st = ScalaTraceCompressor()
    st2 = ScalaTrace2Compressor()
    run_compiled(compiled, nprocs, defines=defines, tracer=MultiSink([st, st2]))
    return st, st2


class TestScalaTraceDumps:
    def test_nonempty_and_deterministic(self):
        st, _ = compressors(4, {"n": 10})
        merged = merge_all_queues({r: st.queue(r) for r in range(4)})
        a = scalatrace_dumps(merged)
        b = scalatrace_dumps(merged)
        assert a == b and len(a) > 20

    def test_size_flat_in_iterations(self):
        sizes = []
        for n in (10, 1000):
            st, _ = compressors(4, {"n": n})
            merged = merge_all_queues({r: st.queue(r) for r in range(4)})
            sizes.append(len(scalatrace_dumps(merged)))
        # Only RSD counts and the stats varints grow.
        assert sizes[1] <= sizes[0] + 32

    def test_gzip_variant(self):
        st, _ = compressors(4, {"n": 50})
        merged = merge_all_queues({r: st.queue(r) for r in range(4)})
        gz = scalatrace_dumps(merged, gzip=True)
        assert gz[:2] == b"\x1f\x8b"
        assert _gzip.decompress(gz) == scalatrace_dumps(merged)


class TestScalaTrace2Dumps:
    def test_nonempty(self):
        _, st2 = compressors(4, {"n": 10})
        merged = merge_all_st2({r: st2.queue(r) for r in range(4)})
        assert len(scalatrace2_dumps(merged)) > 20

    def test_elastic_values_cost_bytes(self):
        # Varying sizes inflate the value sequences, hence the encoding.
        varied = SRC.replace("256", "256 + 8 * i")
        compiled = compile_minimpi(varied, cypress=False)
        st2 = ScalaTrace2Compressor()
        run_compiled(compiled, 4, defines={"n": 40}, tracer=st2)
        merged_varied = merge_all_st2({r: st2.queue(r) for r in range(4)})
        _, st2_flat = compressors(4, {"n": 40})
        merged_flat = merge_all_st2({r: st2_flat.queue(r) for r in range(4)})
        # Strided varying values stay compact (that's the elastic win) but
        # can never be cheaper than constants.
        assert len(scalatrace2_dumps(merged_varied)) >= len(
            scalatrace2_dumps(merged_flat)
        )
