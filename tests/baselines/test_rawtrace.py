"""Raw-trace (Gzip baseline) tests."""

from repro.baselines.rawtrace import RawTraceSink
from repro.driver import run_compiled
from repro.mpisim.pmpi import MultiSink
from repro.static.instrument import compile_minimpi


def run_raw(source, nprocs, defines=None):
    compiled = compile_minimpi(source, cypress=False)
    raw = RawTraceSink()
    run_compiled(compiled, nprocs, defines=defines, tracer=raw)
    return raw


LOOPED = """
func main() {
  var rank = mpi_comm_rank();
  var size = mpi_comm_size();
  for (var i = 0; i < n; i = i + 1) {
    mpi_send((rank + 1) % size, 256, 1);
    mpi_recv((rank + size - 1) % size, 256, 1);
  }
}
"""


class TestVolume:
    def test_bytes_proportional_to_events(self):
        small = run_raw(LOOPED, 4, {"n": 10})
        big = run_raw(LOOPED, 4, {"n": 100})
        assert big.total_bytes() > 8 * small.total_bytes()

    def test_bytes_linear_in_ranks(self):
        p4 = run_raw(LOOPED, 4, {"n": 20})
        p8 = run_raw(LOOPED, 8, {"n": 20})
        ratio = p8.total_bytes() / p4.total_bytes()
        assert 1.8 < ratio < 2.2

    def test_gzip_compresses_repetition(self):
        raw = run_raw(LOOPED, 4, {"n": 200})
        assert raw.gzip_bytes() < raw.total_bytes() / 5

    def test_gzip_still_linear_in_ranks(self):
        # The paper's point: per-rank gzip cannot do inter-process
        # compression, so total size scales with P.
        p4 = run_raw(LOOPED, 4, {"n": 50}).gzip_bytes()
        p8 = run_raw(LOOPED, 8, {"n": 50}).gzip_bytes()
        assert p8 > 1.7 * p4


class TestContent:
    def test_one_line_per_event(self):
        raw = run_raw("func main() { mpi_barrier(); mpi_barrier(); }", 3)
        assert raw.event_count() == 6

    def test_lines_carry_parameters(self):
        raw = run_raw(
            "func main() { var p = 1 - mpi_comm_rank(); "
            "mpi_send(p, 512, 9); mpi_recv(p, 512, 9); }",
            2,
        )
        text = raw.rank_blob(0).decode()
        assert "MPI_Send" in text and "bytes=512" in text and "tag=9" in text

    def test_request_completions_logged(self):
        raw = run_raw(
            """
            func main() {
              var rank = mpi_comm_rank();
              if (rank == 0) { var r = mpi_irecv(-1, 8, 0); mpi_wait(r); }
              else { mpi_send(0, 8, 0); }
            }
            """,
            2,
        )
        assert "REQ" in raw.rank_blob(0).decode()

    def test_empty_rank(self):
        raw = RawTraceSink()
        assert raw.rank_bytes(5) == 0
        assert raw.rank_blob(5) == b""
        assert raw.gzip_bytes() == 0
