"""ScalaTrace baseline tests: RSD formation, losslessness, alignment."""

import sys

import pytest

sys.path.insert(0, "tests")
from helpers import truth_signatures  # noqa: E402

from repro.baselines.rsd import RSD, EventTerm, expand, term_equal  # noqa: E402
from repro.baselines.scalatrace import (  # noqa: E402
    ScalaTraceCompressor,
    _align,
    event_signature,
    lift_queue,
    merge_all_queues,
    merge_queues,
    merged_bytes,
    expand_rank,
)
from repro.driver import run_compiled  # noqa: E402
from repro.mpisim.pmpi import MultiSink, RecordingSink  # noqa: E402
from repro.static.instrument import compile_minimpi  # noqa: E402


def run_st(source, nprocs, defines=None, max_window=32):
    compiled = compile_minimpi(source, cypress=False)
    rec = RecordingSink()
    st = ScalaTraceCompressor(max_window=max_window)
    run_compiled(compiled, nprocs, defines=defines, tracer=MultiSink([rec, st]))
    return rec, st


class TestRSDFormation:
    def test_repeated_event_becomes_rsd(self):
        rec, st = run_st(
            "func main() { for (var i = 0; i < 20; i = i + 1) { mpi_barrier(); } }",
            2,
        )
        queue = st.queue(0)
        assert len(queue) == 1
        assert isinstance(queue[0], RSD)
        assert queue[0].count == 20

    def test_repeating_pair_becomes_rsd(self):
        rec, st = run_st(
            """
            func main() {
              for (var i = 0; i < 10; i = i + 1) {
                mpi_allreduce(8);
                mpi_barrier();
              }
            }
            """,
            2,
        )
        queue = st.queue(0)
        assert len(queue) == 1
        assert queue[0].count == 10 and len(queue[0].body) == 2

    def test_nested_loops_become_prsd(self):
        rec, st = run_st(
            """
            func main() {
              for (var i = 0; i < 5; i = i + 1) {
                mpi_bcast(0, 64);
                for (var j = 0; j < 3; j = j + 1) { mpi_barrier(); }
              }
            }
            """,
            2,
        )
        queue = st.queue(0)
        assert len(queue) == 1
        outer = queue[0]
        assert isinstance(outer, RSD) and outer.count == 5
        kinds = [type(t).__name__ for t in outer.body]
        assert kinds == ["EventTerm", "RSD"]
        assert outer.body[1].count == 3

    def test_varying_sizes_defeat_rsd(self):
        # The SP weakness: per-iteration message sizes break matching.
        rec, st = run_st(
            """
            func main() {
              for (var i = 0; i < 10; i = i + 1) {
                mpi_bcast(0, 64 + 8 * i);
              }
            }
            """,
            2,
        )
        assert len(st.queue(0)) == 10  # nothing merged

    def test_window_bounds_pattern_length(self):
        # A 4-event body exceeds max_window=2, so no RSD forms.
        src = """
        func main() {
          for (var i = 0; i < 6; i = i + 1) {
            mpi_bcast(0, 8); mpi_reduce(0, 8);
            mpi_allreduce(8); mpi_barrier();
          }
        }
        """
        _, wide = run_st(src, 2, max_window=8)
        _, narrow = run_st(src, 2, max_window=2)
        assert len(wide.queue(0)) < len(narrow.queue(0))


class TestLosslessness:
    SOURCES = [
        (
            """
            func main() {
              var rank = mpi_comm_rank();
              var size = mpi_comm_size();
              for (var i = 0; i < 12; i = i + 1) {
                if (rank < size - 1) { mpi_send(rank + 1, 64, 0); }
                if (rank > 0) { mpi_recv(rank - 1, 64, 0); }
              }
              mpi_reduce(0, 8);
            }
            """,
            6,
            None,
        ),
        (
            """
            func main() {
              var rank = mpi_comm_rank();
              for (var i = 0; i < 5; i = i + 1) {
                if (rank == 0) { mpi_recv(-1, 8, 0); } else { mpi_send(0, 8, 0); }
              }
              mpi_barrier();
            }
            """,
            2,
            None,
        ),
    ]

    @pytest.mark.parametrize("source,nprocs,defines", SOURCES)
    def test_intra_expansion_exact(self, source, nprocs, defines):
        rec, st = run_st(source, nprocs, defines)
        for rank in range(nprocs):
            assert expand(st.queue(rank)) == truth_signatures(rec, rank)

    @pytest.mark.parametrize("source,nprocs,defines", SOURCES)
    def test_inter_expansion_exact(self, source, nprocs, defines):
        rec, st = run_st(source, nprocs, defines)
        merged = merge_all_queues({r: st.queue(r) for r in range(nprocs)})
        for rank in range(nprocs):
            assert expand_rank(merged, rank) == truth_signatures(rec, rank)

    def test_fold_schedule_also_lossless(self):
        source, nprocs, defines = self.SOURCES[0]
        rec, st = run_st(source, nprocs, defines)
        merged = merge_all_queues(
            {r: st.queue(r) for r in range(nprocs)}, schedule="fold"
        )
        for rank in range(nprocs):
            assert expand_rank(merged, rank) == truth_signatures(rec, rank)


class TestAlignment:
    def test_identical_sequences(self):
        pairs = _align([1, 2, 3], [1, 2, 3])
        assert pairs == [(0, 0), (1, 1), (2, 2)]

    def test_insertion(self):
        pairs = _align([1, 3], [1, 2, 3])
        matched = [(a, b) for a, b in pairs if a is not None and b is not None]
        assert len(matched) == 2

    def test_disjoint_sequences(self):
        pairs = _align([1, 2], [3, 4])
        matched = [(a, b) for a, b in pairs if a is not None and b is not None]
        assert matched == []
        assert len(pairs) == 4

    def test_merge_preserves_rank_ownership(self):
        a = EventTerm(sig=("MPI_Barrier",))
        b = EventTerm(sig=("MPI_Bcast",))
        qa = lift_queue([a], rank=0)
        qb = lift_queue([b], rank=1)
        merged = merge_queues(qa, qb)
        assert len(merged) == 2
        owners = [slot.ranks() for slot in merged]
        assert [0] in owners and [1] in owners


class TestSizes:
    def test_compressible_trace_small(self):
        rec, st = run_st(
            "func main() { for (var i = 0; i < 500; i = i + 1) { mpi_barrier(); } }",
            4,
        )
        merged = merge_all_queues({r: st.queue(r) for r in range(4)})
        assert merged_bytes(merged) < 500

    def test_term_equal_mismatched_types(self):
        e = EventTerm(sig=("X",))
        r = RSD(count=2, body=[EventTerm(sig=("X",))])
        assert not term_equal(e, r)
        assert not term_equal(r, RSD(count=3, body=[EventTerm(sig=("X",))]))
