"""Driver facade tests."""

import pytest

from repro.driver import compile_minimpi, run_compiled, run_source
from repro.mpisim import NetworkModel, RecordingSink


class TestRunSource:
    def test_one_call_pipeline(self):
        compiled, result = run_source(
            "func main() { mpi_barrier(); compute(10); }", nprocs=4
        )
        assert compiled.static is not None
        assert result.total_events == 4
        assert result.elapsed >= 10

    def test_without_cypress(self):
        compiled, result = run_source(
            "func main() { mpi_barrier(); }", nprocs=2, cypress=False
        )
        assert compiled.static is None

    def test_defines_passed_through(self):
        sink = RecordingSink()
        compiled = compile_minimpi(
            "func main() { for (var i = 0; i < n; i = i + 1) "
            "{ mpi_allreduce(8); } }"
        )
        run_compiled(compiled, 2, defines={"n": 7}, tracer=sink)
        assert len(sink.events[0]) == 7

    def test_custom_network_changes_timing(self):
        slow = NetworkModel(latency=100.0)
        fast = NetworkModel(latency=0.1)
        src = (
            "func main() { var p = 1 - mpi_comm_rank(); "
            "if (mpi_comm_rank() == 0) { mpi_send(1, 8, 0); } "
            "else { mpi_recv(0, 8, 0); } }"
        )
        _, r_slow = run_source(src, 2, network=slow)
        _, r_fast = run_source(src, 2, network=fast)
        assert r_slow.elapsed > r_fast.elapsed

    def test_max_steps_enforced(self):
        from repro.minilang.interp import InterpError

        with pytest.raises(InterpError):
            run_source(
                "func main() { for (var i = 0; i < 100000; i = i + 1) "
                "{ var x = i; } }",
                nprocs=1,
                max_steps=100,
            )


class TestCypressRunFacade:
    def test_requires_cypress_compile(self):
        from repro.core import run_cypress

        compiled = compile_minimpi("func main() { mpi_barrier(); }",
                                   cypress=False)
        with pytest.raises(ValueError):
            run_cypress(compiled, 2)

    def test_extra_sinks_receive_events(self):
        from repro.core import run_cypress

        sink = RecordingSink()
        run = run_cypress(
            "func main() { mpi_barrier(); }", 3, extra_sinks=[sink]
        )
        assert len(sink.events) == 3
        assert run.trace_bytes() > 0

    def test_merge_is_cached(self):
        from repro.core import run_cypress

        run = run_cypress("func main() { mpi_barrier(); }", 2)
        assert run.merge() is run.merge()

    def test_replay_unmerged_matches_merged(self):
        from repro.core import run_cypress

        run = run_cypress(
            "func main() { mpi_allreduce(64); mpi_barrier(); }", 2
        )
        merged = [e.call_tuple() for e in run.replay(0, merged=True)]
        single = [e.call_tuple() for e in run.replay(0, merged=False)]
        assert merged == single
