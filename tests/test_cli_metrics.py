"""CLI tests for the --metrics / --metrics-out flags, plus smoke tests
for previously-untested flag combinations (merge schedules and worker
pools through the CLI)."""

import json

import jsonschema
import pytest

from repro import obs
from repro.cli import main
from repro.obs import METRICS_SCHEMA


@pytest.fixture(autouse=True)
def _no_global_registry():
    obs.disable()
    yield
    obs.disable()


def _trace(tmp_path, *extra, name="t.cyp"):
    out = str(tmp_path / name)
    rc = main(
        ["trace", "ep", "-n", "4", "--scale", "0.4", "-o", out, *extra]
    )
    assert rc == 0
    return out


class TestMetricsOut:
    def test_trace_writes_schema_valid_json(self, tmp_path, capsys):
        mpath = tmp_path / "m.json"
        _trace(tmp_path, "--metrics-out", str(mpath))
        assert f"metrics -> {mpath}" in capsys.readouterr().out
        doc = json.loads(mpath.read_text())
        jsonschema.validate(doc, METRICS_SCHEMA)
        # Stage spans for the whole pipeline, in execution order.
        paths = [s["path"] for s in doc["spans"]]
        for stage in ("static.compile", "trace.run", "intra.compress",
                      "inter.merge", "serialize.dumps"):
            assert any(p.endswith(stage) for p in paths), paths
        assert doc["counters"]["intra.events"] > 0
        assert doc["counters"]["serialize.bytes.total"] > 0
        assert 0.0 <= doc["gauges"]["intra.mono_cache_hit_rate"] <= 1.0

    def test_metrics_leave_trace_bytes_identical(self, tmp_path):
        plain = _trace(tmp_path, name="plain.cyp")
        observed = _trace(
            tmp_path, "--metrics-out", str(tmp_path / "m.json"),
            name="observed.cyp",
        )
        with open(plain, "rb") as a, open(observed, "rb") as b:
            assert a.read() == b.read()

    def test_registry_disabled_after_command(self, tmp_path):
        _trace(tmp_path, "--metrics-out", str(tmp_path / "m.json"))
        assert obs.active() is None

    def test_parallel_workers_aggregate(self, tmp_path):
        """Counters folded across a worker pool equal a one-worker run
        of the same (batched) ingestion path; the inline path may take
        different slow-path branches but must agree on the totals."""
        mpath = tmp_path / "m.json"

        def counters(name, *extra):
            _trace(tmp_path, "--metrics-out", str(mpath), *extra, name=name)
            return json.loads(mpath.read_text())["counters"]

        inline = counters("a.cyp")
        serial = counters("b.cyp", "--compress-workers", "1")
        parallel = counters(
            "c.cyp", "--compress-workers", "2", "--merge-workers", "2"
        )
        intra = lambda c: {k: v for k, v in c.items()  # noqa: E731
                           if k.startswith("intra.")}
        assert intra(parallel) == intra(serial)
        for key in ("intra.events", "intra.records", "intra.ranks"):
            assert inline[key] == parallel[key]


class TestMetricsPrint:
    def test_trace_prints_summary(self, tmp_path, capsys):
        _trace(tmp_path, "--metrics")
        out = capsys.readouterr().out
        assert "stage spans:" in out
        assert "counters:" in out
        assert "intra.events" in out

    def test_replay_metrics(self, tmp_path, capsys):
        trace = _trace(tmp_path)
        assert main(["replay", trace, "-r", "1", "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "replay.events" in out and "replay.rank_seconds" in out

    def test_verify_metrics_out(self, tmp_path, capsys):
        mpath = tmp_path / "verify.json"
        assert main(
            ["verify", "ep", "-n", "4", "--scale", "0.4",
             "--metrics-out", str(mpath)]
        ) == 0
        assert "OK" in capsys.readouterr().out
        doc = json.loads(mpath.read_text())
        jsonschema.validate(doc, METRICS_SCHEMA)
        assert doc["counters"]["intra.events"] > 0


class TestFlagCombos:
    """Smoke coverage for flag combinations no test exercised before."""

    def test_trace_fold_schedule(self, tmp_path):
        fold = _trace(tmp_path, "--merge-schedule", "fold", name="fold.cyp")
        tree = _trace(tmp_path, "--merge-schedule", "tree", name="tree.cyp")
        # Serialization is canonical: the schedule must not leak into
        # the bytes.
        with open(fold, "rb") as a, open(tree, "rb") as b:
            assert a.read() == b.read()

    def test_trace_parallel_workers_match_serial(self, tmp_path):
        serial = _trace(tmp_path, name="serial.cyp")
        parallel = _trace(
            tmp_path, "--compress-workers", "2", "--merge-workers", "2",
            name="parallel.cyp",
        )
        with open(serial, "rb") as a, open(parallel, "rb") as b:
            assert a.read() == b.read()

    def test_verify_fold_and_workers(self, capsys):
        assert main(
            ["verify", "ep", "-n", "4", "--scale", "0.4",
             "--merge-schedule", "fold", "--compress-workers", "2"]
        ) == 0
        assert "OK" in capsys.readouterr().out

    def test_verify_merge_workers(self, capsys):
        assert main(
            ["verify", "ep", "-n", "4", "--scale", "0.4",
             "--merge-workers", "2"]
        ) == 0
        assert "OK" in capsys.readouterr().out
